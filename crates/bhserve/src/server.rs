//! The `bhserve` daemon: accept loop, connection handling and dispatch.
//!
//! One OS thread per connection over blocking sockets — boring on purpose.
//! The expensive resource here is never connection handling (a request is
//! one small JSON object) but the engine runs behind it, so concurrency is
//! governed where it matters: a counting *run gate* caps simultaneous
//! engine runs at [`ServerOptions::max_concurrent_runs`], and everything
//! else (thousands of parked connections, session tables, quota ledgers)
//! is cheap shared state.  Connection threads get small stacks; the engine
//! itself spawns its own worker threads per run and is unaffected.
//!
//! Error discipline per connection:
//!
//! * malformed JSON in a well-formed frame → an [`crate::proto::E_PROTO`]
//!   *response* — the framing is still synchronized, the connection lives;
//! * a framing error (oversized declaration, mid-frame EOF) → the
//!   connection is dropped, because the byte stream is unsynchronized by
//!   construction;
//! * any drop of the connection — clean or not — tears down its sessions
//!   ([`crate::session`]) while the tenant's quota ledger survives.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::batch::{BatchRunner, RunOutput};
use crate::frame::{read_frame, write_frame, FaultyStream};
use crate::proto::{
    self, decode_job, ok_response, run_fields, snapshot_bodies, tenant_of, Job, Reject,
    E_OVERLOADED, E_PROTO, E_UNKNOWN_OP, E_UNSUPPORTED,
};
use crate::quota::QuotaBook;
use crate::session::{check_session_preconditions, Session, SessionTable};
use engine::{BackendRegistry, FaultPlan};
use scenarios::Registry as ScenarioRegistry;
use serde::Value;

/// Everything tunable about a server instance.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Listen address; port 0 picks a free port (reported by
    /// [`Server::addr`]).
    pub addr: String,
    /// Maximum simultaneous engine runs (the run gate's permit count).
    pub max_concurrent_runs: usize,
    /// Interaction quota applied to tenants without an override
    /// (`None` = unmetered).
    pub default_quota: Option<u64>,
    /// Per-tenant quota overrides.
    pub tenant_quotas: Vec<(String, u64)>,
    /// Live-session cap per connection.
    pub max_sessions_per_conn: usize,
    /// Jobs up to this many bodies are eligible for single-flight
    /// coalescing ([`crate::batch`]); bigger jobs always run alone.
    pub batch_max_bodies: usize,
    /// Snapshot store directory for `suspend`/`resume` (`None` disables
    /// both ops).  The store is plain files, so suspended sessions survive
    /// daemon restarts pointed at the same directory.
    pub snap_dir: Option<String>,
    /// Per-connection read deadline.  Bounds *every* blocking read —
    /// including the pre-first-frame accept state, so a client that
    /// connects and sends nothing cannot hold its thread forever.  `None`
    /// waits indefinitely (the pre-hardening behaviour).
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline: a stalled reader (zero receive
    /// window) fails the write instead of wedging the thread.
    pub write_timeout: Option<Duration>,
    /// Sessions idle longer than this many seconds are evicted (their body
    /// state dropped) the next time their connection submits a request.
    /// `None` keeps sessions until the connection closes.
    pub idle_session_secs: Option<u64>,
    /// Bound on concurrently *dispatching* heavy requests (run/open/step/
    /// resume) across all connections.  Beyond it the server sheds load
    /// with [`E_OVERLOADED`] + a `retry_after_ms` hint instead of queueing
    /// unboundedly behind the run gate.  `None` never sheds.
    pub max_inflight: Option<usize>,
    /// Deterministic fault-injection plan ([`engine::fault`]); frame-level
    /// sites (`frame.*`) fire inside this server's connection streams, and
    /// the plan is forwarded to the snapshot store for `snap.*` sites.
    pub faults: FaultPlan,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".to_string(),
            max_concurrent_runs: 2,
            default_quota: None,
            tenant_quotas: Vec::new(),
            max_sessions_per_conn: 16,
            batch_max_bodies: 4096,
            snap_dir: None,
            read_timeout: Some(Duration::from_secs(600)),
            write_timeout: Some(Duration::from_secs(60)),
            idle_session_secs: None,
            max_inflight: None,
            faults: FaultPlan::default(),
        }
    }
}

/// Counting semaphore over the engine: at most `max_concurrent_runs`
/// simulations execute at once; everyone else parks here (without holding
/// any other lock — see [`crate::batch`] for why followers never deadlock
/// the gate).
struct RunGate {
    free: Mutex<usize>,
    cv: Condvar,
}

impl RunGate {
    fn new(permits: usize) -> RunGate {
        RunGate { free: Mutex::new(permits.max(1)), cv: Condvar::new() }
    }

    fn acquire(&self) -> RunPermit<'_> {
        let mut free = self.free.lock().unwrap();
        while *free == 0 {
            free = self.cv.wait(free).unwrap();
        }
        *free -= 1;
        RunPermit { gate: self }
    }
}

struct RunPermit<'a> {
    gate: &'a RunGate,
}

impl Drop for RunPermit<'_> {
    fn drop(&mut self) {
        *self.gate.free.lock().unwrap() += 1;
        self.gate.cv.notify_one();
    }
}

/// State shared by every connection thread.
struct Shared {
    opts: ServerOptions,
    scenarios: ScenarioRegistry,
    backends: BackendRegistry,
    quotas: QuotaBook,
    batch: BatchRunner,
    gate: RunGate,
    session_ids: Arc<AtomicU64>,
    connections: AtomicUsize,
    inflight: AtomicUsize,
}

/// A running `bhserve` instance.
///
/// Dropping the handle (or calling [`Server::stop`]) stops the accept loop;
/// already-connected clients are served until they disconnect.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds, starts the accept loop and returns immediately.
    pub fn start(
        opts: ServerOptions,
        scenarios: ScenarioRegistry,
        backends: BackendRegistry,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            quotas: QuotaBook::new(opts.default_quota, opts.tenant_quotas.clone()),
            batch: BatchRunner::new(),
            gate: RunGate::new(opts.max_concurrent_runs),
            session_ids: Arc::new(AtomicU64::new(1)),
            connections: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            opts,
            scenarios,
            backends,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let (shared, stop) = (Arc::clone(&shared), Arc::clone(&stop));
            std::thread::Builder::new()
                .name("bhserve-accept".to_string())
                .spawn(move || accept_loop(listener, shared, stop))?
        };
        Ok(Server { addr, stop, accept_thread: Some(accept_thread), shared })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The quota ledger — exposed so operators (and the integration tests)
    /// can audit per-tenant spend against standalone runs.
    pub fn quotas(&self) -> &QuotaBook {
        &self.shared.quotas
    }

    /// Number of currently-connected clients.
    pub fn connections(&self) -> usize {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Number of heavy requests currently dispatching (the load-shedding
    /// counter behind [`ServerOptions::max_inflight`]).
    pub fn inflight(&self) -> usize {
        self.shared.inflight.load(Ordering::Relaxed)
    }

    /// Stops accepting new connections and joins the accept loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                // Connection threads mostly park in `read_frame`; the engine
                // runs on its own per-run worker threads, so a small stack
                // keeps thousands of idle clients cheap.
                let spawned = std::thread::Builder::new()
                    .name("bhserve-conn".to_string())
                    .stack_size(256 * 1024)
                    .spawn(move || {
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        let _ = serve_connection(stream, &shared);
                        shared.connections.fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    // Thread exhaustion: drop the connection rather than die.
                    continue;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    // The deadlines apply to the underlying socket, so both the reader and
    // the writer clone observe them — including the very first read, which
    // is how a connect-and-say-nothing client gets reaped.
    stream.set_read_timeout(shared.opts.read_timeout)?;
    stream.set_write_timeout(shared.opts.write_timeout)?;
    let mut reader = BufReader::new(FaultyStream::new(stream.try_clone()?, &shared.opts.faults));
    let mut writer = BufWriter::new(FaultyStream::new(stream, &shared.opts.faults));
    // Sessions live exactly as long as this stack frame: any return —
    // clean close, frame error, write failure — drops the table.
    let mut sessions =
        SessionTable::new(Arc::clone(&shared.session_ids), shared.opts.max_sessions_per_conn);
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()), // orderly close
            // A read deadline expiring surfaces as WouldBlock (or TimedOut,
            // platform-dependent): the idle-connection reaper path.  Any
            // other error means the stream is unsynchronized; drop it too.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        if let Some(secs) = shared.opts.idle_session_secs {
            sessions.evict_idle(Duration::from_secs(secs));
        }
        let response = match parse_request(&payload) {
            Ok(request) => {
                dispatch(shared, &mut sessions, &request).unwrap_or_else(|r| r.to_value())
            }
            Err(reject) => reject.to_value(),
        };
        let text = serde_json::to_string(&response)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_frame(&mut writer, text.as_bytes())?;
    }
}

fn parse_request(payload: &[u8]) -> Result<Value, Reject> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| Reject::new(E_PROTO, "request payload is not UTF-8"))?;
    let value: Value = serde_json::from_str(text)
        .map_err(|e| Reject::new(E_PROTO, format!("request is not valid JSON: {e}")))?;
    if !matches!(value, Value::Object(_)) {
        return Err(Reject::new(E_PROTO, "request must be a JSON object"));
    }
    Ok(value)
}

/// Runs `job` through the engine, coalescing with identical in-flight jobs
/// when it is small enough to be eligible.
fn execute(shared: &Shared, job: &Job) -> (Arc<RunOutput>, bool) {
    let compute = || {
        // The permit is held only while computing — never while waiting on
        // another flight — so the gate cannot be deadlocked by coalescing.
        let _permit = shared.gate.acquire();
        let scenario = shared.scenarios.get(&job.scenario).expect("validated at decode");
        let backend = shared.backends.get(&job.backend).expect("validated at decode");
        let bodies = scenario.generate(job.cfg.nbodies, job.cfg.seed);
        let start = Instant::now();
        let result = backend.run(&job.cfg, bodies);
        RunOutput { result, wall_ms: start.elapsed().as_secs_f64() * 1e3 }
    };
    if job.cfg.nbodies <= shared.opts.batch_max_bodies {
        shared.batch.run(job.identity(), compute)
    } else {
        (Arc::new(compute()), false)
    }
}

/// Relays a backend `supports` rejection: a stringified
/// [`engine::ConfigError`] keeps its machine code in the rendered message,
/// so validation is re-run to recover the structured code; anything else is
/// a backend-specific [`E_UNSUPPORTED`].
fn check_supported(backend: &dyn engine::Backend, job: &Job) -> Result<(), Reject> {
    if let Err(e) = job.cfg.validate() {
        return Err(Reject::new(e.code, e.to_string()));
    }
    backend.supports(&job.cfg).map_err(|msg| Reject::new(E_UNSUPPORTED, msg))
}

/// The `retry_after_ms` hint attached to every [`E_OVERLOADED`] shed — a
/// constant so the chaos harness stays deterministic.
pub const RETRY_AFTER_MS: u64 = 25;

/// RAII admission slot for heavy ops under [`ServerOptions::max_inflight`].
struct InflightSlot<'a> {
    shared: &'a Shared,
}

impl<'a> InflightSlot<'a> {
    /// Admits one heavy request or sheds it with [`E_OVERLOADED`].
    fn admit(shared: &'a Shared) -> Result<InflightSlot<'a>, Reject> {
        if let Some(max) = shared.opts.max_inflight {
            let mut cur = shared.inflight.load(Ordering::Relaxed);
            loop {
                if cur >= max {
                    let mut reject = Reject::new(
                        E_OVERLOADED,
                        format!("server is at its in-flight limit ({max}); retry with backoff"),
                    );
                    reject.extra.push(("retry_after_ms".to_string(), Value::UInt(RETRY_AFTER_MS)));
                    return Err(reject);
                }
                match shared.inflight.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        } else {
            shared.inflight.fetch_add(1, Ordering::AcqRel);
        }
        Ok(InflightSlot { shared })
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Ops that reach the engine (or disk) and are therefore metered by the
/// in-flight limit; everything else is cheap bookkeeping and never shed.
const HEAVY_OPS: [&str; 4] = ["run", "open", "step", "resume"];

fn dispatch(
    shared: &Shared,
    sessions: &mut SessionTable,
    request: &Value,
) -> Result<Value, Reject> {
    let op = proto::str_of(request, "op")?
        .ok_or_else(|| Reject::new(E_PROTO, "field \"op\" is required"))?;
    let _slot =
        if HEAVY_OPS.contains(&op.as_str()) { Some(InflightSlot::admit(shared)?) } else { None };
    match op.as_str() {
        "ping" => Ok(ok_response(vec![("pong".to_string(), Value::Bool(true))])),
        "health" => Ok(op_health(shared, sessions)),
        "list" => Ok(op_list(shared)),
        "usage" => op_usage(shared, request),
        "run" => op_run(shared, request),
        "open" => op_open(shared, sessions, request),
        "step" => op_step(shared, sessions, request),
        "query" => op_query(sessions, request),
        "snapshot" => op_snapshot(sessions, request),
        "suspend" => op_suspend(shared, sessions, request),
        "resume" => op_resume(shared, sessions, request),
        "close" => op_close(sessions, request),
        other => {
            const OPS: [&str; 12] = [
                "ping", "health", "list", "usage", "run", "open", "step", "query", "snapshot",
                "suspend", "resume", "close",
            ];
            Err(Reject::new(E_UNKNOWN_OP, engine::suggest::unknown_key("op", other, &OPS)))
        }
    }
}

/// `health`: liveness + load snapshot, never shed and never metered — the
/// op a balancer (or the chaos harness) polls to decide whether a daemon
/// is back after a restart.
fn op_health(shared: &Shared, sessions: &SessionTable) -> Value {
    ok_response(vec![
        ("connections".to_string(), Value::UInt(shared.connections.load(Ordering::Relaxed) as u64)),
        ("inflight".to_string(), Value::UInt(shared.inflight.load(Ordering::Relaxed) as u64)),
        ("sessions".to_string(), Value::UInt(sessions.len() as u64)),
        (
            "max_inflight".to_string(),
            match shared.opts.max_inflight {
                Some(max) => Value::UInt(max as u64),
                None => Value::Null,
            },
        ),
    ])
}

fn op_list(shared: &Shared) -> Value {
    let scenarios = Value::Array(
        shared
            .scenarios
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(s.name().to_string())),
                    ("description".to_string(), Value::String(s.description().to_string())),
                ])
            })
            .collect(),
    );
    let backends = Value::Array(
        shared
            .backends
            .iter()
            .map(|b| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(b.name().to_string())),
                    ("description".to_string(), Value::String(b.description().to_string())),
                    ("sessions".to_string(), Value::Bool(b.supports_sessions())),
                ])
            })
            .collect(),
    );
    ok_response(vec![("scenarios".to_string(), scenarios), ("backends".to_string(), backends)])
}

fn op_usage(shared: &Shared, request: &Value) -> Result<Value, Reject> {
    let tenant = tenant_of(request)?;
    let usage = shared.quotas.usage(&tenant);
    let limit = match shared.quotas.limit(&tenant) {
        Some(limit) => Value::UInt(limit),
        None => Value::Null,
    };
    Ok(ok_response(vec![
        ("tenant".to_string(), Value::String(tenant)),
        ("interactions".to_string(), Value::UInt(usage.interactions)),
        ("tree_ops".to_string(), Value::UInt(usage.tree_ops)),
        ("runs".to_string(), Value::UInt(usage.runs)),
        ("limit".to_string(), limit),
    ]))
}

fn op_run(shared: &Shared, request: &Value) -> Result<Value, Reject> {
    let tenant = tenant_of(request)?;
    shared.quotas.admit(&tenant)?;
    let job = decode_job(request, &shared.scenarios, &shared.backends)?;
    let backend = shared.backends.get(&job.backend).expect("validated at decode");
    check_supported(backend, &job)?;
    let (output, batched) = execute(shared, &job);
    // Followers are charged the full deterministic cost of the job they
    // requested; see the billing contract in `crate::quota`.
    shared.quotas.charge(&tenant, &output.result.total_stats());
    let mut fields = run_fields(&output.result, output.wall_ms);
    fields.push(("batched".to_string(), Value::Bool(batched)));
    Ok(ok_response(fields))
}

fn op_open(shared: &Shared, sessions: &mut SessionTable, request: &Value) -> Result<Value, Reject> {
    let tenant = tenant_of(request)?;
    shared.quotas.admit(&tenant)?;
    let job = decode_job(request, &shared.scenarios, &shared.backends)?;
    let backend = shared.backends.get(&job.backend).expect("validated at decode");
    check_session_preconditions(backend, &job)?;
    check_supported(backend, &job)?;
    let scenario = shared.scenarios.get(&job.scenario).expect("validated at decode");
    let bodies = scenario.generate(job.cfg.nbodies, job.cfg.seed);
    let id = sessions.open(Session::new(tenant, job, bodies, 0))?;
    Ok(ok_response(vec![("session".to_string(), Value::UInt(id))]))
}

fn op_step(shared: &Shared, sessions: &mut SessionTable, request: &Value) -> Result<Value, Reject> {
    let id = session_id(request)?;
    let k = proto::u64_of(request, "steps")?.unwrap_or(1) as usize;
    if k == 0 {
        return Err(Reject::new(E_PROTO, "field \"steps\" must be at least 1"));
    }
    // Admission is checked against the *session's* tenant — the one the
    // work is charged to — before any engine time is spent.
    let tenant = sessions.get_mut(id)?.tenant.clone();
    shared.quotas.admit(&tenant)?;
    let session = sessions.get_mut(id)?;
    let cfg = session.chunk_config(k);
    let backend = shared.backends.get(&session.job.backend).expect("validated at open");
    let (result, wall_ms) = {
        let _permit = shared.gate.acquire();
        let start = Instant::now();
        let result = backend.run(&cfg, session.bodies.clone());
        (result, start.elapsed().as_secs_f64() * 1e3)
    };
    session.advance(k, &result);
    let steps_done = session.steps_done;
    shared.quotas.charge(&tenant, &result.total_stats());
    let mut fields = vec![
        ("session".to_string(), Value::UInt(id)),
        ("steps_done".to_string(), Value::UInt(steps_done as u64)),
    ];
    fields.extend(run_fields(&result, wall_ms));
    Ok(ok_response(fields))
}

fn op_query(sessions: &mut SessionTable, request: &Value) -> Result<Value, Reject> {
    let id = session_id(request)?;
    let session = sessions.get_mut(id)?;
    Ok(ok_response(vec![
        ("session".to_string(), Value::UInt(id)),
        ("tenant".to_string(), Value::String(session.tenant.clone())),
        ("scenario".to_string(), Value::String(session.job.scenario.clone())),
        ("backend".to_string(), Value::String(session.job.backend.clone())),
        ("n".to_string(), Value::UInt(session.job.cfg.nbodies as u64)),
        ("steps_done".to_string(), Value::UInt(session.steps_done as u64)),
    ]))
}

fn op_snapshot(sessions: &mut SessionTable, request: &Value) -> Result<Value, Reject> {
    let id = session_id(request)?;
    let session = sessions.get_mut(id)?;
    Ok(ok_response(vec![
        ("session".to_string(), Value::UInt(id)),
        ("steps_done".to_string(), Value::UInt(session.steps_done as u64)),
        ("bodies".to_string(), snapshot_bodies(&session.bodies)),
    ]))
}

/// The server's snapshot store, or the standard "not offered" rejection.
fn snap_store(shared: &Shared) -> Result<snapstore::Store, Reject> {
    let dir = shared.opts.snap_dir.as_deref().ok_or_else(|| {
        Reject::new(
            proto::E_SNAP_UNAVAILABLE,
            "this server was started without --snap-dir; suspend/resume are not offered",
        )
    })?;
    snapstore::Store::open(dir)
        .map(|store| store.with_faults(shared.opts.faults.clone()))
        .map_err(|e| Reject::new(proto::E_SNAP_UNAVAILABLE, format!("snapshot store: {e}")))
}

/// `suspend`: persist a live session to the snapshot store and close it.
///
/// The response's `token` (the manifest's content hash) is the handle a
/// later `resume` — on this connection, another connection, or a freshly
/// restarted daemon pointed at the same `--snap-dir` — uses to pick the
/// session back up.
fn op_suspend(
    shared: &Shared,
    sessions: &mut SessionTable,
    request: &Value,
) -> Result<Value, Reject> {
    let id = session_id(request)?;
    let store = snap_store(shared)?;
    let session = sessions.get_mut(id)?;
    // Sessions run under the per-step rebuild policy (enforced at `open`),
    // so the state is stateless across steps: the anchor *is* the current
    // bodies and a resume continues from them directly.
    let state = snapstore::SimState {
        scenario: session.job.scenario.clone(),
        backend: session.job.backend.clone(),
        cfg: session.job.cfg.clone(),
        step: session.steps_done,
        anchor_step: session.steps_done,
        tree_generation: 0,
        bodies: session.bodies.clone(),
        anchor: session.bodies.clone(),
    };
    let saved = store
        .save_token(&state)
        .map_err(|e| Reject::new(proto::E_SNAP_CORRUPT, format!("saving snapshot: {e}")))?;
    let session = sessions.close(id).expect("session existed above");
    Ok(ok_response(vec![
        ("suspended".to_string(), Value::UInt(id)),
        ("token".to_string(), Value::String(saved.manifest_hash)),
        ("steps_done".to_string(), Value::UInt(session.steps_done as u64)),
        ("chunks_total".to_string(), Value::UInt(saved.chunks_total as u64)),
        ("chunks_new".to_string(), Value::UInt(saved.chunks_new as u64)),
    ]))
}

/// `resume`: reopen a suspended session from its token.
///
/// The resumed session is owned by *this* connection and charged to the
/// requesting tenant; the snapshot stays in the store (resume is
/// non-destructive, so a token can seed many sessions).
fn op_resume(
    shared: &Shared,
    sessions: &mut SessionTable,
    request: &Value,
) -> Result<Value, Reject> {
    let tenant = tenant_of(request)?;
    shared.quotas.admit(&tenant)?;
    let token = proto::str_of(request, "token")?
        .ok_or_else(|| Reject::new(E_PROTO, "field \"token\" is required"))?;
    // Tokens are manifest hashes; anything else (separators, dots) would let
    // a client address arbitrary files relative to the store.
    if token.len() != 64 || !token.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(Reject::new(E_PROTO, "field \"token\" must be a 64-hex-digit snapshot token"));
    }
    let store = snap_store(shared)?;
    let state = store.load(&token).map_err(|e| match e {
        snapstore::SnapError::Io { ref source, .. } if source.kind() == io::ErrorKind::NotFound => {
            Reject::new(proto::E_NO_SNAPSHOT, format!("token {token} names no snapshot here"))
        }
        snapstore::SnapError::MissingChunk { .. } | snapstore::SnapError::Corrupt { .. } => {
            Reject::new(proto::E_SNAP_CORRUPT, format!("snapshot {token} is damaged: {e}"))
        }
        other => Reject::new(proto::E_SNAP_CORRUPT, format!("loading snapshot {token}: {other}")),
    })?;
    // Re-validate what `open` would have: the snapshot travels through disk,
    // not through this server's decode path.
    let backend = shared.backends.get(&state.backend).ok_or_else(|| {
        Reject::new(
            proto::E_UNKNOWN_BACKEND,
            engine::suggest::unknown_key("backend", &state.backend, &shared.backends.names()),
        )
    })?;
    let job =
        Job { scenario: state.scenario.clone(), backend: state.backend.clone(), cfg: state.cfg };
    check_session_preconditions(backend, &job)?;
    check_supported(backend, &job)?;
    let steps_done = state.step;
    let id = sessions.open(Session::new(tenant, job, state.bodies, steps_done))?;
    Ok(ok_response(vec![
        ("session".to_string(), Value::UInt(id)),
        ("steps_done".to_string(), Value::UInt(steps_done as u64)),
    ]))
}

fn op_close(sessions: &mut SessionTable, request: &Value) -> Result<Value, Reject> {
    let id = session_id(request)?;
    let session = sessions.close(id)?;
    Ok(ok_response(vec![
        ("closed".to_string(), Value::UInt(id)),
        ("steps_done".to_string(), Value::UInt(session.steps_done as u64)),
    ]))
}

fn session_id(request: &Value) -> Result<u64, Reject> {
    proto::u64_of(request, "session")?
        .ok_or_else(|| Reject::new(E_PROTO, "field \"session\" is required"))
}

/// A minimal blocking client for the framed protocol — what `bhload`, the
/// integration tests and the CI smoke job use to talk to a live server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: &SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { reader: BufReader::new(stream.try_clone()?), writer: BufWriter::new(stream) })
    }

    /// Sends one request object and waits for its response.
    pub fn call(&mut self, request: &Value) -> io::Result<Value> {
        let text = serde_json::to_string(request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_frame(&mut self.writer, text.as_bytes())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        let text = std::str::from_utf8(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        serde_json::from_str(text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Sends raw bytes as one frame without waiting for a response, then
    /// drops the connection — the abuse path the CI smoke job exercises
    /// (mid-session disconnects must not wedge the server).
    pub fn send_raw_and_hang_up(mut self, payload: &[u8]) -> io::Result<()> {
        write_frame(&mut self.writer, payload)
    }

    /// Writes a frame header promising a payload that never arrives, then
    /// drops the connection — the mid-frame abort the chaos harness uses.
    /// The server sees `UnexpectedEof` inside a frame and must tear the
    /// connection down without wedging.
    pub fn abort_mid_frame(mut self) -> io::Result<()> {
        use std::io::Write;
        self.writer.write_all(&64u32.to_le_bytes())?;
        self.writer.write_all(b"par")?; // 3 of the promised 64 bytes
        self.writer.flush()
    }
}

/// What one [`call_with_retry`] resolution cost: the response itself plus
/// the recovery accounting the chaos bench records.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The final (non-retried) response.
    pub response: Value,
    /// Attempts consumed, `1` when the first try succeeded.
    pub attempts: usize,
    /// Wall milliseconds spent on failed attempts and backoff sleeps —
    /// `0.0` when the first try succeeded.  This is the per-request
    /// `recovery_ms` the bench Record aggregates.
    pub retry_ms: f64,
}

/// Calls `request` with reconnect-per-attempt retry and deterministic
/// jittered exponential backoff.
///
/// Retried conditions: any transport error (connect refused while a daemon
/// restarts, mid-frame disconnect, deadline) and [`E_OVERLOADED`] sheds —
/// where the server's `retry_after_ms` hint, when present, becomes the
/// backoff floor.  Every other response — success or a structured
/// rejection — resolves immediately; rejections are *answers*, not faults.
/// The jitter stream is keyed by `seed`, so a chaos run's retry schedule
/// is reproducible.
pub fn call_with_retry(
    addr: &SocketAddr,
    request: &Value,
    max_attempts: usize,
    seed: u64,
) -> io::Result<RetryOutcome> {
    let start = Instant::now();
    let mut last_err: Option<io::Error> = None;
    for attempt in 1..=max_attempts.max(1) {
        let outcome = Client::connect(addr).and_then(|mut c| c.call(request));
        match outcome {
            Ok(response) => {
                let overloaded =
                    response.get("code").and_then(|c| c.as_str()) == Some(E_OVERLOADED);
                if !overloaded {
                    let retry_ms =
                        if attempt == 1 { 0.0 } else { start.elapsed().as_secs_f64() * 1e3 };
                    return Ok(RetryOutcome { response, attempts: attempt, retry_ms });
                }
                let floor = response.get("retry_after_ms").and_then(|v| v.as_u64()).unwrap_or(0);
                last_err = Some(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "server shed the request with E_OVERLOADED",
                ));
                std::thread::sleep(Duration::from_millis(floor.max(backoff_ms(seed, attempt))));
            }
            Err(e) => {
                last_err = Some(e);
                if attempt < max_attempts {
                    std::thread::sleep(Duration::from_millis(backoff_ms(seed, attempt)));
                }
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("call_with_retry: no attempts made")))
}

/// Deterministic jittered exponential backoff: 5·2^(k−1) ms base, plus a
/// seeded splitmix-style jitter of at most half the base — small enough to
/// keep chaos tests fast, spread enough to avoid synchronized stampedes.
fn backoff_ms(seed: u64, attempt: usize) -> u64 {
    let base = 5u64 << (attempt.min(6) - 1).min(63);
    let mixed = (seed ^ attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    base + (mixed >> 56) % (base / 2 + 1)
}

/// Builds a request object from `(key, value)` pairs plus the `op`.
pub fn request(op: &str, fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("op".to_string(), Value::String(op.to_string()))];
    all.extend(fields);
    Value::Object(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use barnes_hut_upc::backends;
    use scenarios::builtin;

    fn start_default(opts: ServerOptions) -> Server {
        Server::start(opts, builtin(), backends()).unwrap()
    }

    fn field_u64(v: &Value, key: &str) -> u64 {
        v.get(key).and_then(|x| x.as_u64()).unwrap_or_else(|| panic!("missing {key}: {v:?}"))
    }

    #[test]
    fn ping_list_and_unknown_ops() {
        let server = start_default(ServerOptions::default());
        let mut client = Client::connect(&server.addr()).unwrap();
        let pong = client.call(&request("ping", Vec::new())).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        let list = client.call(&request("list", Vec::new())).unwrap();
        let backends = list.get("backends").unwrap().as_array().unwrap();
        assert!(backends.iter().any(|b| b.get("name").unwrap().as_str() == Some("upc")));
        let err = client.call(&request("pnig", Vec::new())).unwrap();
        assert_eq!(err.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(err.get("code").unwrap().as_str(), Some(proto::E_UNKNOWN_OP));
        assert!(err.get("error").unwrap().as_str().unwrap().contains("did you mean \"ping\"?"));
    }

    #[test]
    fn malformed_json_keeps_the_connection_alive() {
        let server = start_default(ServerOptions::default());
        let mut client = Client::connect(&server.addr()).unwrap();
        // Raw garbage in a well-formed frame: an E_PROTO response, then the
        // same connection keeps working.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut stream, b"{not json").unwrap();
        let reply = read_frame(&mut BufReader::new(stream.try_clone().unwrap()))
            .unwrap()
            .expect("server must reply to garbage");
        let v: Value = serde_json::from_str(std::str::from_utf8(&reply).unwrap()).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some(proto::E_PROTO));
        drop(stream);
        // And an independent healthy client is unaffected.
        let pong = client.call(&request("ping", Vec::new())).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn run_executes_and_charges_the_tenant() {
        let server = start_default(ServerOptions::default());
        let mut client = Client::connect(&server.addr()).unwrap();
        let reply = client
            .call(&request(
                "run",
                vec![
                    ("tenant".to_string(), Value::String("acme".to_string())),
                    ("n".to_string(), Value::UInt(32)),
                    ("backend".to_string(), Value::String("direct".to_string())),
                    ("steps".to_string(), Value::UInt(2)),
                    ("measured".to_string(), Value::UInt(1)),
                ],
            ))
            .unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true), "{reply:?}");
        let interactions = field_u64(&reply, "interactions");
        assert!(interactions > 0);
        let usage = client
            .call(&request(
                "usage",
                vec![("tenant".to_string(), Value::String("acme".to_string()))],
            ))
            .unwrap();
        assert_eq!(field_u64(&usage, "interactions"), interactions);
        assert_eq!(field_u64(&usage, "runs"), 1);
        assert_eq!(server.quotas().usage("acme").interactions, interactions);
    }

    #[test]
    fn config_error_codes_are_relayed() {
        let server = start_default(ServerOptions::default());
        let mut client = Client::connect(&server.addr()).unwrap();
        let reply = client
            .call(&request(
                "run",
                vec![
                    ("tenant".to_string(), Value::String("t".to_string())),
                    ("n".to_string(), Value::UInt(32)),
                    ("steps".to_string(), Value::UInt(1)),
                    ("measured".to_string(), Value::UInt(5)),
                ],
            ))
            .unwrap();
        assert_eq!(reply.get("ok").unwrap().as_bool(), Some(false));
        // The machine-readable code travels as its own field, exactly as
        // SimConfig::validate reports it locally.
        assert_eq!(reply.get("code").unwrap().as_str(), Some("E_MEASURED_WINDOW"));
        let unknown = client
            .call(&request(
                "run",
                vec![
                    ("tenant".to_string(), Value::String("t".to_string())),
                    ("n".to_string(), Value::UInt(32)),
                    ("scenario".to_string(), Value::String("plumer".to_string())),
                ],
            ))
            .unwrap();
        assert_eq!(unknown.get("code").unwrap().as_str(), Some(proto::E_UNKNOWN_SCENARIO));
        assert!(unknown
            .get("error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("did you mean \"plummer\"?"));
    }

    #[test]
    fn sessions_step_snapshot_and_close() {
        let server = start_default(ServerOptions::default());
        let mut client = Client::connect(&server.addr()).unwrap();
        let opened = client
            .call(&request(
                "open",
                vec![
                    ("tenant".to_string(), Value::String("t".to_string())),
                    ("n".to_string(), Value::UInt(24)),
                    ("backend".to_string(), Value::String("direct".to_string())),
                ],
            ))
            .unwrap();
        assert_eq!(opened.get("ok").unwrap().as_bool(), Some(true), "{opened:?}");
        let id = field_u64(&opened, "session");
        let sid = ("session".to_string(), Value::UInt(id));
        let stepped = client
            .call(&request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(2))]))
            .unwrap();
        assert_eq!(field_u64(&stepped, "steps_done"), 2);
        let queried = client.call(&request("query", vec![sid.clone()])).unwrap();
        assert_eq!(queried.get("backend").unwrap().as_str(), Some("direct"));
        assert_eq!(field_u64(&queried, "steps_done"), 2);
        let snap = client.call(&request("snapshot", vec![sid.clone()])).unwrap();
        assert_eq!(snap.get("bodies").unwrap().as_array().unwrap().len(), 24);
        let closed = client.call(&request("close", vec![sid.clone()])).unwrap();
        assert_eq!(field_u64(&closed, "closed"), id);
        let gone = client.call(&request("query", vec![sid])).unwrap();
        assert_eq!(gone.get("code").unwrap().as_str(), Some(proto::E_NO_SESSION));
    }

    #[test]
    fn quota_rejections_are_structured_and_ledgers_survive_disconnects() {
        let opts = ServerOptions {
            tenant_quotas: vec![("freeloader".to_string(), 1)],
            ..ServerOptions::default()
        };
        let server = start_default(opts);
        let tenant = ("tenant".to_string(), Value::String("freeloader".to_string()));
        let job = |t: (String, Value)| {
            request(
                "run",
                vec![
                    t,
                    ("n".to_string(), Value::UInt(24)),
                    ("backend".to_string(), Value::String("direct".to_string())),
                    ("steps".to_string(), Value::UInt(1)),
                    ("measured".to_string(), Value::UInt(1)),
                ],
            )
        };
        {
            let mut client = Client::connect(&server.addr()).unwrap();
            let first = client.call(&job(tenant.clone())).unwrap();
            assert_eq!(first.get("ok").unwrap().as_bool(), Some(true), "{first:?}");
            let second = client.call(&job(tenant.clone())).unwrap();
            assert_eq!(second.get("code").unwrap().as_str(), Some(proto::E_QUOTA_EXCEEDED));
            assert!(field_u64(&second, "used") >= 1);
            assert_eq!(field_u64(&second, "limit"), 1);
        }
        // Reconnecting does not launder the ledger.
        let mut client = Client::connect(&server.addr()).unwrap();
        let again = client.call(&job(tenant)).unwrap();
        assert_eq!(again.get("code").unwrap().as_str(), Some(proto::E_QUOTA_EXCEEDED));
    }

    #[test]
    fn silent_connections_are_reaped_by_the_read_deadline() {
        let opts = ServerOptions {
            read_timeout: Some(Duration::from_millis(60)),
            ..ServerOptions::default()
        };
        let server = start_default(opts);
        // Connect and say nothing: pre-hardening this held a thread forever.
        let parked = TcpStream::connect(server.addr()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while server.connections() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.connections(), 1, "connection must register before the deadline test");
        while server.connections() != 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.connections(), 0, "silent connection must be reaped");
        drop(parked);
        // The server is still healthy for real clients.
        let mut client = Client::connect(&server.addr()).unwrap();
        let pong = client.call(&request("ping", Vec::new())).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn overload_sheds_heavy_ops_with_a_retry_hint() {
        // max_inflight = 0 makes every heavy op shed deterministically.
        let opts = ServerOptions { max_inflight: Some(0), ..ServerOptions::default() };
        let server = start_default(opts);
        let mut client = Client::connect(&server.addr()).unwrap();
        let run = request(
            "run",
            vec![
                ("tenant".to_string(), Value::String("t".to_string())),
                ("n".to_string(), Value::UInt(24)),
                ("backend".to_string(), Value::String("direct".to_string())),
            ],
        );
        let shed = client.call(&run).unwrap();
        assert_eq!(shed.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(shed.get("code").unwrap().as_str(), Some(E_OVERLOADED));
        assert_eq!(field_u64(&shed, "retry_after_ms"), RETRY_AFTER_MS);
        // Cheap ops are never shed.
        let pong = client.call(&request("ping", Vec::new())).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
        let health = client.call(&request("health", Vec::new())).unwrap();
        assert_eq!(field_u64(&health, "max_inflight"), 0);
        // The retry helper keeps backing off and surfaces the shed as an
        // error once attempts are exhausted.
        let err = call_with_retry(&server.addr(), &run, 2, 7).unwrap_err();
        assert!(err.to_string().contains("E_OVERLOADED"), "{err}");
    }

    #[test]
    fn health_reports_connections_inflight_and_sessions() {
        let server = start_default(ServerOptions::default());
        let mut client = Client::connect(&server.addr()).unwrap();
        let opened = client
            .call(&request(
                "open",
                vec![
                    ("tenant".to_string(), Value::String("t".to_string())),
                    ("n".to_string(), Value::UInt(24)),
                    ("backend".to_string(), Value::String("direct".to_string())),
                ],
            ))
            .unwrap();
        assert_eq!(opened.get("ok").unwrap().as_bool(), Some(true), "{opened:?}");
        let health = client.call(&request("health", Vec::new())).unwrap();
        assert_eq!(health.get("ok").unwrap().as_bool(), Some(true));
        assert!(field_u64(&health, "connections") >= 1);
        assert_eq!(field_u64(&health, "inflight"), 0);
        assert_eq!(field_u64(&health, "sessions"), 1);
        assert!(matches!(health.get("max_inflight"), Some(Value::Null)));
    }

    #[test]
    fn idle_sessions_are_evicted_between_requests() {
        let opts = ServerOptions { idle_session_secs: Some(1), ..ServerOptions::default() };
        let server = start_default(opts);
        let mut client = Client::connect(&server.addr()).unwrap();
        let opened = client
            .call(&request(
                "open",
                vec![
                    ("tenant".to_string(), Value::String("t".to_string())),
                    ("n".to_string(), Value::UInt(24)),
                    ("backend".to_string(), Value::String("direct".to_string())),
                ],
            ))
            .unwrap();
        let id = field_u64(&opened, "session");
        std::thread::sleep(Duration::from_millis(1200));
        // The eviction pass runs before this request dispatches.
        let gone =
            client.call(&request("query", vec![("session".to_string(), Value::UInt(id))])).unwrap();
        assert_eq!(gone.get("code").unwrap().as_str(), Some(proto::E_NO_SESSION));
    }

    #[test]
    fn mid_frame_aborts_do_not_wedge_the_server() {
        let server = start_default(ServerOptions::default());
        let aborter = Client::connect(&server.addr()).unwrap();
        aborter.abort_mid_frame().unwrap();
        let mut client = Client::connect(&server.addr()).unwrap();
        let pong = client.call(&request("ping", Vec::new())).unwrap();
        assert_eq!(pong.get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn injected_frame_faults_are_recovered_by_client_retry() {
        // A one-shot injected write disconnect kills exactly one response;
        // the retrying client reconnects and the next attempt succeeds
        // (the FaultPlan's shared state keeps the trigger consumed across
        // connection-level clones).
        let opts = ServerOptions {
            faults: FaultPlan::parse("seed=11,frame.write.disconnect@n1").unwrap(),
            ..ServerOptions::default()
        };
        let server = start_default(opts);
        let outcome = call_with_retry(&server.addr(), &request("ping", Vec::new()), 4, 3).unwrap();
        assert_eq!(outcome.response.get("ok").unwrap().as_bool(), Some(true));
        assert!(outcome.attempts >= 2, "first response write must have faulted");
        assert!(outcome.retry_ms > 0.0);
        // And a retry-free call works now that the fault is consumed.
        let clean = call_with_retry(&server.addr(), &request("ping", Vec::new()), 4, 3).unwrap();
        assert_eq!(clean.attempts, 1);
        assert_eq!(clean.retry_ms, 0.0);
    }
}
