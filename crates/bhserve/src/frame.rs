//! Length-prefixed message framing for the `bhserve` wire protocol.
//!
//! Every message — request or response — is one *frame*: a 4-byte
//! little-endian payload length followed by exactly that many payload bytes
//! (UTF-8 JSON at the protocol layer; the framing itself is
//! content-agnostic).  The format is deliberately minimal so both sides can
//! be implemented over a blocking byte stream with no external
//! dependencies, and so a fuzzer can exhaustively describe the failure
//! modes: a frame is either delivered whole, rejected for its declared
//! length, or the stream ends.
//!
//! Failure taxonomy of [`read_frame`]:
//!
//! * clean EOF *between* frames → `Ok(None)` — the peer closed the
//!   connection in an orderly way (how a client ends its session);
//! * a declared length beyond [`MAX_FRAME`] → [`std::io::ErrorKind::InvalidData`]
//!   — the peer is broken or malicious, the connection must be dropped
//!   (after this the stream position is unsynchronized by construction);
//! * EOF *inside* a frame (header or payload) →
//!   [`std::io::ErrorKind::UnexpectedEof`] — a mid-message disconnect.
//!
//! Nothing in this module panics on wire input; the proptest suite pins
//! that (truncations, oversized declarations, garbage bytes).

use std::io::{self, Read, Write};

use engine::FaultPlan;

/// A byte stream with faultline injection points on both directions —
/// wraps the server's (or a chaos client's) `TcpStream` so the framing
/// layer can be driven through its whole failure taxonomy deterministically.
///
/// Sites consulted per call:
///
/// * `frame.read.short` — the read delivers at most 1 byte (a pathological
///   trickle; framing must reassemble);
/// * `frame.read.disconnect` — the read fails with `ConnectionReset`
///   (a mid-frame drop when it fires inside a frame);
/// * `frame.write.disconnect` — the write fails with `BrokenPipe`.
///
/// With an empty plan the wrapper is pass-through and touches no locks.
///
/// A fired disconnect *latches*: once a `*.disconnect` site fires the
/// stream stays broken in both directions, exactly like a real dropped
/// connection — otherwise a `BufWriter`'s drop-time re-flush would quietly
/// deliver the bytes the injected fault claimed to lose.
pub struct FaultyStream<S> {
    inner: S,
    faults: Option<FaultPlan>,
    broken: bool,
}

impl<S> FaultyStream<S> {
    /// Wraps `inner`; a plan with no `frame.*` sites disarms the wrapper
    /// entirely (the per-read/per-write fault checks are skipped).
    pub fn new(inner: S, faults: &FaultPlan) -> FaultyStream<S> {
        const SITES: [&str; 3] =
            ["frame.read.short", "frame.read.disconnect", "frame.write.disconnect"];
        let armed = SITES.iter().any(|s| faults.targets(s));
        FaultyStream { inner, faults: armed.then(|| faults.clone()), broken: false }
    }

    fn disconnected(site: &str) -> io::Error {
        let kind = if site.starts_with("frame.read") {
            io::ErrorKind::ConnectionReset
        } else {
            io::ErrorKind::BrokenPipe
        };
        io::Error::new(kind, format!("injected disconnect (faultline site {site})"))
    }
}

impl<S: Read> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(faults) = &self.faults {
            if self.broken {
                return Err(Self::disconnected("frame.read.disconnect"));
            }
            if faults.fires("frame.read.disconnect") {
                self.broken = true;
                return Err(Self::disconnected("frame.read.disconnect"));
            }
            if faults.fires("frame.read.short") && buf.len() > 1 {
                return self.inner.read(&mut buf[..1]);
            }
        }
        self.inner.read(buf)
    }
}

impl<S: Write> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(faults) = &self.faults {
            if self.broken || faults.fires("frame.write.disconnect") {
                self.broken = true;
                return Err(Self::disconnected("frame.write.disconnect"));
            }
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Err(Self::disconnected("frame.write.disconnect"));
        }
        self.inner.flush()
    }
}

/// Upper bound on a frame payload, in bytes.  Large enough for a full
/// `snapshot` of the biggest serving-mix workload (hex-encoded body state
/// is ~500 bytes per body), small enough that a corrupt or hostile length
/// header cannot make the server allocate gigabytes.
pub const MAX_FRAME: usize = 8 * 1024 * 1024;

/// Writes one frame (length header + payload) and flushes the stream.
///
/// Fails with [`std::io::ErrorKind::InvalidInput`] when the payload exceeds
/// [`MAX_FRAME`] — the peer would be required to reject it, so it must
/// never be sent.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds MAX_FRAME ({MAX_FRAME})", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, distinguishing an orderly close from a broken one.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (no header byte
/// read); see the module docs for the error taxonomy.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("declared frame length {len} exceeds MAX_FRAME ({MAX_FRAME})"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::UnexpectedEof, "stream ended inside a frame payload")
        } else {
            e
        }
    })?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0u8, 255, 1]).unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&[0u8, 255, 1][..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF between frames");
    }

    #[test]
    fn oversized_declared_length_is_invalid_data() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&((MAX_FRAME as u32) + 1).to_le_bytes());
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncations_are_unexpected_eof() {
        // Inside the header.
        let err = read_frame(&mut Cursor::new(vec![3u8, 0])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Inside the payload.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"shor");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_payload_is_never_sent() {
        let huge = vec![0u8; MAX_FRAME + 1];
        let mut sink = Vec::new();
        let err = write_frame(&mut sink, &huge).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn short_reads_reassemble_frames_intact() {
        // Every read degraded to 1 byte: framing must still deliver whole
        // frames, because read_frame loops until the header and payload fill.
        let plan = FaultPlan::parse("frame.read.short@p1.0").unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, b"trickled payload").unwrap();
        write_frame(&mut buf, b"and another").unwrap();
        let mut r = FaultyStream::new(Cursor::new(buf), &plan);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"trickled payload"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"and another"[..]));
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn injected_read_disconnects_latch() {
        // Reads are counted per call: frame 1 costs two (header, payload),
        // so @n3 drops the connection inside frame 2's header.
        let plan = FaultPlan::parse("frame.read.disconnect@n3").unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut r = FaultyStream::new(Cursor::new(buf), &plan);
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"first"[..]));
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Broken stays broken — no resurrection on retry against the same
        // stream (reconnecting makes a new stream, which is the point).
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn injected_write_disconnects_latch_through_flush() {
        let plan = FaultPlan::parse("frame.write.disconnect@n1").unwrap();
        let mut w = FaultyStream::new(Vec::new(), &plan);
        let err = write_frame(&mut w, b"lost").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        // A later flush (e.g. BufWriter's drop) must not deliver the bytes.
        assert_eq!(w.flush().unwrap_err().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(write_frame(&mut w, b"more").unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn unarmed_plans_are_pass_through() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"clean").unwrap();
        let mut r = FaultyStream::new(Cursor::new(buf), &FaultPlan::default());
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"clean"[..]));
        // A plan with only non-frame sites is also pass-through.
        let other = FaultPlan::parse("snap.chunk.torn@n1").unwrap();
        let mut w = FaultyStream::new(Vec::new(), &other);
        write_frame(&mut w, b"ok").unwrap();
    }
}
