//! The `bhload` stress harness: thousands of concurrent clients against a
//! live server, reported as an [`engine::bench`] record.
//!
//! The mix is a small grid of *cells* — (scenario, backend, size) shapes —
//! and every simulated client is pinned to one cell round-robin.  All
//! clients of a cell submit the *identical* job (same seed, same config),
//! which makes the serving rows deterministic in the engine's counters
//! (the baseline diff compares sweep points by full spec equality) and
//! exercises the single-flight coalescing path the way a popular demo
//! workload would.  Cell sizes are deliberately disjoint from the
//! `benchsuite` grids, so serving rows and standalone rows never collide
//! in a merged record and each gate sees exactly the rows it owns.
//!
//! Beyond the measured traffic the harness mixes in:
//!
//! * **session clients** — every [`LoadOptions::session_every`]-th client
//!   runs an open/step/step/snapshot/close flow instead of a one-shot job
//!   (excluded from the bench rows: a session chunk is a different
//!   measurement protocol);
//! * **abuse clients** (opt-in) — a `freeloader` tenant that keeps
//!   submitting until it is refused over quota, and a client that drops
//!   its connection mid-session; both pin the failure paths the CI smoke
//!   job watches for.
//!
//! Latency is measured at the client: request write to response read,
//! framing and queueing included.  Wall-clock numbers (latency percentiles,
//! throughput) are host-dependent and informational — the perf gate
//! compares only the deterministic counters and simulated times, exactly
//! as it does for standalone rows.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

use crate::proto::{E_OVERLOADED, E_QUOTA_EXCEEDED, E_SESSION_UNSUPPORTED, E_SNAP_UNAVAILABLE};
use crate::server::{call_with_retry, request, Client};
use engine::bench::{Record, RunRecord, RunSpec, Sample, SERVICE_BHSERVE, SERVICE_CHAOS};
use engine::{OptLevel, Phase, PhaseTimes, SimConfig};
use pgas::{Machine, RankStats};
use serde::Value;

/// One (scenario, backend, size) shape of the workload mix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scenario registry key.
    pub scenario: &'static str,
    /// Backend registry key.
    pub backend: &'static str,
    /// Number of bodies.
    pub nbodies: usize,
}

/// Which grid of cells to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// The three small cells — seconds of runtime, used by the CI smoke job.
    Quick,
    /// The quick cells plus the same shapes at larger sizes — the grid
    /// committed in `BENCH_*.json`.
    Full,
}

/// The serving-mix shapes.  Sizes are disjoint from every `benchsuite`
/// grid size (512/2048/4096 sweeps, 2048/4096/8192 kernels) so merged
/// records keep serving and standalone rows separate under the baseline
/// diff's size-scoped exemptions.
pub fn cells(mix: Mix) -> Vec<Cell> {
    let quick = vec![
        Cell { scenario: "plummer", backend: "upc", nbodies: 48 },
        Cell { scenario: "plummer", backend: "direct", nbodies: 96 },
        Cell { scenario: "king", backend: "mpi", nbodies: 192 },
    ];
    match mix {
        Mix::Quick => quick,
        Mix::Full => {
            let mut all = quick;
            all.extend([
                Cell { scenario: "plummer", backend: "upc", nbodies: 384 },
                Cell { scenario: "plummer", backend: "direct", nbodies: 768 },
                Cell { scenario: "king", backend: "mpi", nbodies: 1536 },
            ]);
            all
        }
    }
}

/// Steps per serving job (short on purpose: the serving benchmark measures
/// the service, not long-horizon physics).
const JOB_STEPS: usize = 2;
/// Measured trailing steps per serving job.
const JOB_MEASURED: usize = 1;
/// Emulated nodes per serving job.
const JOB_NODES: usize = 2;

impl Cell {
    /// The exact configuration the server will decode for this cell's job
    /// — used to build the [`RunSpec`] identifying the cell's bench row.
    pub fn config(&self, scenarios: &scenarios::Registry) -> SimConfig {
        let tuning = scenarios
            .get(self.scenario)
            .unwrap_or_else(|| panic!("unknown mix scenario {:?}", self.scenario))
            .recommended_config();
        let mut cfg =
            SimConfig::new(self.nbodies, Machine::power5(JOB_NODES, 1, false), OptLevel::Subspace);
        cfg.steps = JOB_STEPS;
        cfg.measured_steps = JOB_MEASURED;
        cfg.theta = tuning.theta;
        cfg.eps = tuning.eps;
        cfg.dt = tuning.dt;
        cfg
    }

    /// The bench-row identity of this cell's serving measurements.
    pub fn spec(&self, scenarios: &scenarios::Registry) -> RunSpec {
        self.spec_for(scenarios, SERVICE_BHSERVE)
    }

    /// The bench-row identity under an explicit service axis value —
    /// chaos rows use [`SERVICE_CHAOS`] so the fault-free serving rows and
    /// the failure-path rows never collide under the baseline diff.
    pub fn spec_for(&self, scenarios: &scenarios::Registry, service: &str) -> RunSpec {
        let mut spec = RunSpec::new(self.scenario, self.backend, &self.config(scenarios));
        spec.service = service.to_string();
        spec
    }

    /// The request fields of this cell's job (shared by every client of the
    /// cell; the `op` and `tenant` are added per request).
    fn job_fields(&self) -> Vec<(String, Value)> {
        vec![
            ("scenario".to_string(), Value::String(self.scenario.to_string())),
            ("backend".to_string(), Value::String(self.backend.to_string())),
            ("n".to_string(), Value::UInt(self.nbodies as u64)),
            ("steps".to_string(), Value::UInt(JOB_STEPS as u64)),
            ("measured".to_string(), Value::UInt(JOB_MEASURED as u64)),
            ("nodes".to_string(), Value::UInt(JOB_NODES as u64)),
        ]
    }
}

/// Everything tunable about a load run.
#[derive(Debug, Clone)]
pub struct LoadOptions {
    /// Server address.
    pub addr: SocketAddr,
    /// Number of simulated clients (each holds its own connection for the
    /// whole run).
    pub clients: usize,
    /// Worker threads multiplexing the clients.
    pub threads: usize,
    /// Which cell grid to drive.
    pub mix: Mix,
    /// Every Nth client runs a session flow instead of a one-shot job.
    pub session_every: usize,
    /// Mix in the abuse clients (over-quota tenant + mid-session
    /// disconnect).  Requires the server to cap tenant `freeloader` —
    /// the run fails if no quota rejection is observed.
    pub abuse: bool,
    /// Chaos mode: measured rows land under the [`SERVICE_CHAOS`] service
    /// axis, measured requests recover from transport faults and
    /// [`E_OVERLOADED`] sheds via reconnect-with-backoff retries (recording
    /// `recovery_ms`/`error_rate`), and the mix adds mid-frame aborters and
    /// suspend→resume bit-identity probes.  Session-flow casualties of a
    /// daemon restart are tolerated (counted as disconnects) — only
    /// measured requests whose retries are exhausted fail the run.
    pub chaos: bool,
}

impl Default for LoadOptions {
    fn default() -> Self {
        LoadOptions {
            addr: "127.0.0.1:0".parse().unwrap(),
            clients: 1000,
            threads: 32,
            mix: Mix::Quick,
            session_every: 16,
            abuse: false,
            chaos: false,
        }
    }
}

/// The outcome of a load run.
pub struct LoadReport {
    /// The serving-only bench record (one row per cell).
    pub record: Record,
    /// One-shot job requests measured into the record.
    pub measured_requests: usize,
    /// Session flows completed (not in the record).
    pub sessions: usize,
    /// Over-quota rejections observed (abuse tenant).
    pub quota_rejections: usize,
    /// Connections deliberately dropped mid-session.
    pub disconnects: usize,
    /// Requests that failed for any other reason (must be zero for a
    /// healthy run).
    pub failures: usize,
    /// Measured requests that needed the retry path (first attempt lost to
    /// a fault or shed) before succeeding — chaos mode only.
    pub retried: usize,
    /// Deliberate mid-frame aborts delivered — chaos mode only.
    pub aborts: usize,
    /// Suspend→resume bit-identity probes that completed and verified —
    /// chaos mode only.
    pub resume_checks: usize,
    /// Wall-clock of the request phase, seconds.
    pub elapsed_seconds: f64,
}

struct WorkerOutcome {
    samples: Vec<(usize, Sample)>,
    sessions: usize,
    quota_rejections: usize,
    disconnects: usize,
    retried: usize,
    aborts: usize,
    resume_checks: usize,
    failures: Vec<String>,
}

/// Drives the full mix against a live server.
///
/// Every client's connection is opened before any request is sent, so the
/// server really holds `clients` concurrent connections during the
/// measurement phase — the point of the exercise.
pub fn run(opts: &LoadOptions, scenarios: &scenarios::Registry) -> Result<LoadReport, String> {
    let mix = cells(opts.mix);
    let threads = opts.threads.clamp(1, opts.clients.max(1));
    let connected = Arc::new(Barrier::new(threads));
    let failures_seen = Arc::new(AtomicUsize::new(0));
    let outcomes: Arc<Mutex<Vec<WorkerOutcome>>> = Arc::new(Mutex::new(Vec::new()));

    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let mix = mix.clone();
        let opts = opts.clone();
        let connected = Arc::clone(&connected);
        let failures_seen = Arc::clone(&failures_seen);
        let outcomes = Arc::clone(&outcomes);
        let handle = std::thread::Builder::new()
            .name(format!("bhload-{t}"))
            .spawn(move || {
                let outcome = worker(t, threads, &opts, &mix, &connected);
                failures_seen.fetch_add(outcome.failures.len(), Ordering::Relaxed);
                outcomes.lock().unwrap().push(outcome);
            })
            .map_err(|e| format!("spawning worker {t}: {e}"))?;
        handles.push(handle);
    }
    for handle in handles {
        handle.join().map_err(|_| "a load worker panicked".to_string())?;
    }
    let elapsed_seconds = started.elapsed().as_secs_f64();

    let mut samples_by_cell: Vec<Vec<Sample>> = vec![Vec::new(); mix.len()];
    let mut sessions = 0;
    let mut quota_rejections = 0;
    let mut disconnects = 0;
    let mut retried = 0;
    let mut aborts = 0;
    let mut resume_checks = 0;
    let mut failures = Vec::new();
    for outcome in Arc::try_unwrap(outcomes).ok().expect("workers joined").into_inner().unwrap() {
        for (cell, sample) in outcome.samples {
            samples_by_cell[cell].push(sample);
        }
        sessions += outcome.sessions;
        quota_rejections += outcome.quota_rejections;
        disconnects += outcome.disconnects;
        retried += outcome.retried;
        aborts += outcome.aborts;
        resume_checks += outcome.resume_checks;
        failures.extend(outcome.failures);
    }
    if let Some(first) = failures.first() {
        return Err(format!("{} request(s) failed; first: {first}", failures.len()));
    }
    if opts.abuse && quota_rejections == 0 {
        return Err("abuse mix requested but no quota rejection was observed — was the server \
             started with a quota for tenant \"freeloader\"?"
            .to_string());
    }

    let service = if opts.chaos { SERVICE_CHAOS } else { SERVICE_BHSERVE };
    let mut record = Record::new(bh_bench::suite::commit_id(), opts.mix == Mix::Quick);
    let mut measured_requests = 0;
    for (i, cell) in mix.iter().enumerate() {
        let samples = &samples_by_cell[i];
        if samples.is_empty() {
            return Err(format!(
                "cell {}/{}/n{} received no measured requests; raise --clients",
                cell.scenario, cell.backend, cell.nbodies
            ));
        }
        measured_requests += samples.len();
        let mut run = RunRecord::from_samples(cell.spec_for(scenarios, service), samples);
        run.throughput_rps = samples.len() as f64 / elapsed_seconds.max(1e-9);
        record.runs.push(run);
    }
    record.validate()?;
    Ok(LoadReport {
        record,
        measured_requests,
        sessions,
        quota_rejections,
        disconnects,
        retried,
        aborts,
        resume_checks,
        failures: 0,
        elapsed_seconds,
    })
}

/// The role a client index plays in the mix.
enum Role {
    Measured,
    Session,
    Freeloader,
    Disconnector,
    /// Chaos: writes a partial frame then drops the connection.
    Aborter,
    /// Chaos: open → step → snapshot → suspend → resume → verify the
    /// resumed state is bit-identical to the suspended one.
    Resumer,
}

fn role_of(index: usize, opts: &LoadOptions) -> Role {
    if opts.abuse && index == 1 {
        return Role::Freeloader;
    }
    if opts.abuse && index == 2 {
        return Role::Disconnector;
    }
    if opts.chaos && index % 16 == 3 {
        return Role::Aborter;
    }
    if opts.chaos && index % 16 == 4 {
        return Role::Resumer;
    }
    if opts.session_every > 0 && index.is_multiple_of(opts.session_every) && index > 0 {
        return Role::Session;
    }
    Role::Measured
}

/// Retry budget of a chaos-mode measured request: ~1 s of deterministic
/// jittered backoff in total — enough to ride out a daemon SIGKILL +
/// restart, short enough that a genuinely dead server fails the run fast.
const CHAOS_ATTEMPTS: usize = 10;

fn worker(
    t: usize,
    threads: usize,
    opts: &LoadOptions,
    mix: &[Cell],
    connected: &Barrier,
) -> WorkerOutcome {
    let mut outcome = WorkerOutcome {
        samples: Vec::new(),
        sessions: 0,
        quota_rejections: 0,
        disconnects: 0,
        retried: 0,
        aborts: 0,
        resume_checks: 0,
        failures: Vec::new(),
    };
    // Open every connection this worker owns before anyone sends: the
    // barrier below makes the concurrency level real, not amortized.
    let mut clients: Vec<(usize, Client)> = Vec::new();
    for index in (t..opts.clients).step_by(threads) {
        match Client::connect(&opts.addr) {
            Ok(client) => clients.push((index, client)),
            Err(e) => outcome.failures.push(format!("client {index}: connect: {e}")),
        }
    }
    connected.wait();
    for (index, mut client) in clients {
        let cell = &mix[index % mix.len()];
        let tenant = format!("tenant-{}", index % 8);
        match role_of(index, opts) {
            Role::Measured if opts.chaos => {
                match one_shot_chaos(&mut client, &opts.addr, cell, &tenant, index as u64) {
                    Ok((sample, was_retried)) => {
                        outcome.retried += was_retried as usize;
                        outcome.samples.push((index % mix.len(), sample));
                    }
                    Err(e) => outcome.failures.push(format!("client {index}: {e}")),
                }
            }
            Role::Measured => match one_shot(&mut client, cell, &tenant) {
                Ok(sample) => outcome.samples.push((index % mix.len(), sample)),
                Err(e) => outcome.failures.push(format!("client {index}: {e}")),
            },
            Role::Session => match session_flow(&mut client, cell, &tenant) {
                Ok(()) => outcome.sessions += 1,
                // A session flow interrupted by a chaos casualty (daemon
                // restart, injected disconnect) is expected degradation —
                // the session is lost, the fleet must survive.
                Err(e) if opts.chaos && e.contains("transport") => outcome.disconnects += 1,
                Err(e) => outcome.failures.push(format!("client {index}: session: {e}")),
            },
            Role::Aborter => match client.abort_mid_frame() {
                Ok(()) => outcome.aborts += 1,
                Err(e) => outcome.failures.push(format!("client {index}: abort: {e}")),
            },
            Role::Resumer => match resume_flow(&mut client, cell, &tenant) {
                Ok(Some(())) => outcome.resume_checks += 1,
                Ok(None) => {} // suspend/resume not offered by this server
                Err(e) if opts.chaos && e.contains("transport") => outcome.disconnects += 1,
                Err(e) => outcome.failures.push(format!("client {index}: resume-check: {e}")),
            },
            Role::Freeloader => match freeloader_flow(&mut client, mix) {
                Ok(rejections) if rejections > 0 => outcome.quota_rejections += rejections,
                Ok(_) => {
                    outcome.failures.push(format!("client {index}: freeloader was never refused"))
                }
                Err(e) => outcome.failures.push(format!("client {index}: freeloader: {e}")),
            },
            Role::Disconnector => match disconnect_flow(client, cell) {
                Ok(()) => outcome.disconnects += 1,
                Err(e) => outcome.failures.push(format!("client {index}: disconnect: {e}")),
            },
        }
    }
    outcome
}

fn call_checked(client: &mut Client, req: &Value, what: &str) -> Result<Value, String> {
    let reply = client.call(req).map_err(|e| format!("{what}: transport: {e}"))?;
    if reply.get("ok").and_then(|v| v.as_bool()) == Some(true) {
        return Ok(reply);
    }
    let code = reply.get("code").and_then(|v| v.as_str()).unwrap_or("?");
    let error = reply.get("error").and_then(|v| v.as_str()).unwrap_or("?");
    Err(format!("{what}: rejected [{code}]: {error}"))
}

fn one_shot(client: &mut Client, cell: &Cell, tenant: &str) -> Result<Sample, String> {
    let mut fields = vec![("tenant".to_string(), Value::String(tenant.to_string()))];
    fields.extend(cell.job_fields());
    let req = request("run", fields);
    let sent = Instant::now();
    let reply = call_checked(client, &req, "run")?;
    let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
    sample_of(&reply, latency_ms)
}

/// Chaos-mode measured request: first try the held connection; if that
/// attempt is lost to a fault (injected disconnect, daemon restart) or shed
/// with [`E_OVERLOADED`], fall back to reconnect-per-attempt retries with
/// deterministic backoff.  A recovered request records how long recovery
/// took (`recovery_ms`, first send → final success) and `error_rate = 1.0`
/// (its first attempt failed); a clean request records zeros, so fault-free
/// chaos rows aggregate to the legacy values.
fn one_shot_chaos(
    client: &mut Client,
    addr: &SocketAddr,
    cell: &Cell,
    tenant: &str,
    seed: u64,
) -> Result<(Sample, bool), String> {
    let mut fields = vec![("tenant".to_string(), Value::String(tenant.to_string()))];
    fields.extend(cell.job_fields());
    let req = request("run", fields);
    let sent = Instant::now();
    match client.call(&req) {
        Ok(reply) if reply.get("ok").and_then(|v| v.as_bool()) == Some(true) => {
            let latency_ms = sent.elapsed().as_secs_f64() * 1e3;
            return Ok((sample_of(&reply, latency_ms)?, false));
        }
        Ok(reply) => {
            let code = reply.get("code").and_then(|v| v.as_str()).unwrap_or("?");
            if code != E_OVERLOADED {
                let error = reply.get("error").and_then(|v| v.as_str()).unwrap_or("?");
                return Err(format!("run: rejected [{code}]: {error}"));
            }
        }
        Err(_) => {} // transport fault: recover below
    }
    let outcome = call_with_retry(addr, &req, CHAOS_ATTEMPTS, seed)
        .map_err(|e| format!("run: retries exhausted: {e}"))?;
    let reply = outcome.response;
    if reply.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        let code = reply.get("code").and_then(|v| v.as_str()).unwrap_or("?");
        let error = reply.get("error").and_then(|v| v.as_str()).unwrap_or("?");
        return Err(format!("run: rejected after retries [{code}]: {error}"));
    }
    let total_ms = sent.elapsed().as_secs_f64() * 1e3;
    let mut sample = sample_of(&reply, total_ms)?;
    sample.recovery_ms = total_ms;
    sample.error_rate = 1.0;
    Ok((sample, true))
}

/// Decodes a `run`/`step` response into a bench [`Sample`].  Both wall and
/// latency carry the client-observed request latency: for a serving row,
/// the service *is* the thing under measurement.
fn sample_of(reply: &Value, latency_ms: f64) -> Result<Sample, String> {
    let f = |key: &str| {
        reply
            .get(key)
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("response missing numeric field {key:?}"))
    };
    let u = |key: &str| {
        reply
            .get(key)
            .and_then(|v| v.as_u64())
            .ok_or_else(|| format!("response missing counter field {key:?}"))
    };
    let phases_obj =
        reply.get("phases").ok_or_else(|| "response missing \"phases\"".to_string())?;
    let mut phases = PhaseTimes::default();
    for phase in Phase::ALL {
        let v = phases_obj
            .get(phase.key())
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("response phases missing {:?}", phase.key()))?;
        phases.set(phase, v);
    }
    let stats = RankStats {
        interactions: u("interactions")?,
        macs: u("macs")?,
        tree_ops: u("tree_ops")?,
        remote_gets: u("remote_gets")?,
        remote_puts: u("remote_puts")?,
        messages: u("messages")?,
        bytes_in: u("bytes_in")?,
        bytes_out: u("bytes_out")?,
        lock_acquires: u("lock_acquires")?,
        ..Default::default()
    };
    Ok(Sample {
        wall_ms: latency_ms,
        latency_ms,
        phases,
        total_sim: f("total_sim")?,
        migration_fraction: f("migration_fraction")?,
        // Absent on replies from servers predating the node-arena metric.
        tree_bytes: reply.get("tree_bytes").and_then(|v| v.as_u64()).unwrap_or(0),
        recovery_ms: 0.0,
        error_rate: 0.0,
        stats,
    })
}

fn session_flow(client: &mut Client, cell: &Cell, tenant: &str) -> Result<(), String> {
    let mut fields = vec![("tenant".to_string(), Value::String(tenant.to_string()))];
    fields.extend(cell.job_fields());
    let opened = match client.call(&request("open", fields)) {
        Ok(reply) => reply,
        Err(e) => return Err(format!("open: transport: {e}")),
    };
    if opened.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        // A backend may legitimately refuse sessions; that is not a load
        // failure, just a flow that ends early.
        let code = opened.get("code").and_then(|v| v.as_str()).unwrap_or("?");
        if code == E_SESSION_UNSUPPORTED {
            return Ok(());
        }
        let error = opened.get("error").and_then(|v| v.as_str()).unwrap_or("?");
        return Err(format!("open rejected [{code}]: {error}"));
    }
    let id = opened
        .get("session")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "open reply missing session id".to_string())?;
    let sid = ("session".to_string(), Value::UInt(id));
    for _ in 0..2 {
        call_checked(
            client,
            &request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(1))]),
            "step",
        )?;
    }
    let snap = call_checked(client, &request("snapshot", vec![sid.clone()]), "snapshot")?;
    let bodies = snap
        .get("bodies")
        .and_then(|v| v.as_array().map(|a| a.len()))
        .ok_or_else(|| "snapshot reply missing bodies".to_string())?;
    if bodies != cell.nbodies {
        return Err(format!("snapshot returned {bodies} bodies, expected {}", cell.nbodies));
    }
    call_checked(client, &request("close", vec![sid]), "close")?;
    Ok(())
}

/// Submits the smallest cell's job as tenant `freeloader` until refused
/// (bounded attempts).  Returns the number of quota rejections seen.
fn freeloader_flow(client: &mut Client, mix: &[Cell]) -> Result<usize, String> {
    let cell = mix.iter().min_by_key(|c| c.nbodies).expect("mix is never empty");
    let mut rejections = 0;
    for attempt in 0..8 {
        let mut fields = vec![("tenant".to_string(), Value::String("freeloader".to_string()))];
        fields.extend(cell.job_fields());
        let reply = client
            .call(&request("run", fields))
            .map_err(|e| format!("attempt {attempt}: transport: {e}"))?;
        match reply.get("code").and_then(|v| v.as_str()) {
            Some(code) if code == E_QUOTA_EXCEEDED => rejections += 1,
            Some(code) => {
                let error = reply.get("error").and_then(|v| v.as_str()).unwrap_or("?");
                return Err(format!("attempt {attempt}: unexpected rejection [{code}]: {error}"));
            }
            None => {} // accepted — quota not yet exhausted
        }
        if rejections >= 2 {
            break;
        }
    }
    Ok(rejections)
}

/// Digest of a `snapshot` reply's body state — bodies travel hex-encoded
/// (bit-exact), so equal digests mean bit-identical state.
fn snapshot_digest_of(reply: &Value) -> Result<String, String> {
    let bodies = reply.get("bodies").ok_or_else(|| "snapshot reply missing bodies".to_string())?;
    let text = serde_json::to_string(bodies).map_err(|e| e.to_string())?;
    Ok(snapstore::sha256::hex_digest(text.as_bytes()))
}

/// The chaos-mode suspend→resume bit-identity probe: open a session, step
/// it, snapshot, suspend it to the store, resume the token and verify the
/// resumed snapshot is byte-for-byte the suspended one.  Returns `Ok(None)`
/// when the server offers no sessions or no snapshot store (nothing to
/// probe); a digest mismatch is a hard failure.
fn resume_flow(client: &mut Client, cell: &Cell, tenant: &str) -> Result<Option<()>, String> {
    let mut fields = vec![("tenant".to_string(), Value::String(tenant.to_string()))];
    fields.extend(cell.job_fields());
    let opened =
        client.call(&request("open", fields)).map_err(|e| format!("open: transport: {e}"))?;
    if opened.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        let code = opened.get("code").and_then(|v| v.as_str()).unwrap_or("?");
        if code == E_SESSION_UNSUPPORTED {
            return Ok(None);
        }
        let error = opened.get("error").and_then(|v| v.as_str()).unwrap_or("?");
        return Err(format!("open rejected [{code}]: {error}"));
    }
    let id = opened
        .get("session")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "open reply missing session id".to_string())?;
    let sid = ("session".to_string(), Value::UInt(id));
    call_checked(
        client,
        &request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(1))]),
        "step",
    )?;
    let snap = call_checked(client, &request("snapshot", vec![sid.clone()]), "snapshot")?;
    let before = snapshot_digest_of(&snap)?;
    let suspended = client
        .call(&request("suspend", vec![sid.clone()]))
        .map_err(|e| format!("suspend: transport: {e}"))?;
    if suspended.get("ok").and_then(|v| v.as_bool()) != Some(true) {
        let code = suspended.get("code").and_then(|v| v.as_str()).unwrap_or("?");
        if code == E_SNAP_UNAVAILABLE {
            // Session still open (suspend never ran): clean up and skip.
            let _ = client.call(&request("close", vec![sid]));
            return Ok(None);
        }
        let error = suspended.get("error").and_then(|v| v.as_str()).unwrap_or("?");
        return Err(format!("suspend rejected [{code}]: {error}"));
    }
    let token = suspended
        .get("token")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "suspend reply missing token".to_string())?
        .to_string();
    let resumed = call_checked(
        client,
        &request(
            "resume",
            vec![
                ("tenant".to_string(), Value::String(tenant.to_string())),
                ("token".to_string(), Value::String(token)),
            ],
        ),
        "resume",
    )?;
    let new_id = resumed
        .get("session")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "resume reply missing session id".to_string())?;
    let new_sid = ("session".to_string(), Value::UInt(new_id));
    let snap = call_checked(client, &request("snapshot", vec![new_sid.clone()]), "snapshot")?;
    let after = snapshot_digest_of(&snap)?;
    if after != before {
        return Err(format!("resumed session diverged from suspended state: {before} != {after}"));
    }
    call_checked(client, &request("close", vec![new_sid]), "close")?;
    Ok(Some(()))
}

/// Opens one probe session on the smallest quick cell, steps it, suspends
/// it and returns `(token, digest)` — the CI chaos job calls this before
/// SIGKILLing the daemon, then checks [`resume_token`] returns the same
/// digest from the restarted daemon (cross-restart bit-identity).
pub fn suspend_one(addr: &SocketAddr) -> Result<(String, String), String> {
    let cell = cells(Mix::Quick).into_iter().min_by_key(|c| c.nbodies).expect("non-empty mix");
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let mut fields = vec![("tenant".to_string(), Value::String("chaos-probe".to_string()))];
    fields.extend(cell.job_fields());
    let opened = call_checked(&mut client, &request("open", fields), "open")?;
    let id = opened
        .get("session")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "open reply missing session id".to_string())?;
    let sid = ("session".to_string(), Value::UInt(id));
    call_checked(
        &mut client,
        &request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(2))]),
        "step",
    )?;
    let snap = call_checked(&mut client, &request("snapshot", vec![sid.clone()]), "snapshot")?;
    let digest = snapshot_digest_of(&snap)?;
    let suspended = call_checked(&mut client, &request("suspend", vec![sid]), "suspend")?;
    let token = suspended
        .get("token")
        .and_then(|v| v.as_str())
        .ok_or_else(|| "suspend reply missing token".to_string())?
        .to_string();
    Ok((token, digest))
}

/// Resumes `token` (retrying while a daemon restart settles) and returns
/// the digest of the resumed snapshot — [`suspend_one`]'s counterpart.
pub fn resume_token(addr: &SocketAddr, token: &str) -> Result<String, String> {
    let mut client = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let resumed = call_checked(
        &mut client,
        &request(
            "resume",
            vec![
                ("tenant".to_string(), Value::String("chaos-probe".to_string())),
                ("token".to_string(), Value::String(token.to_string())),
            ],
        ),
        "resume",
    )?;
    let id = resumed
        .get("session")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "resume reply missing session id".to_string())?;
    let sid = ("session".to_string(), Value::UInt(id));
    let snap = call_checked(&mut client, &request("snapshot", vec![sid.clone()]), "snapshot")?;
    let digest = snapshot_digest_of(&snap)?;
    call_checked(&mut client, &request("close", vec![sid]), "close")?;
    Ok(digest)
}

/// Opens a session, steps it once, then drops the connection without
/// closing — the mid-session disconnect the server must absorb.
fn disconnect_flow(mut client: Client, cell: &Cell) -> Result<(), String> {
    let mut fields = vec![("tenant".to_string(), Value::String("tenant-ghost".to_string()))];
    fields.extend(cell.job_fields());
    let opened = call_checked(&mut client, &request("open", fields), "open")?;
    let id = opened
        .get("session")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| "open reply missing session id".to_string())?;
    call_checked(
        &mut client,
        &request(
            "step",
            vec![("session".to_string(), Value::UInt(id)), ("steps".to_string(), Value::UInt(1))],
        ),
        "step",
    )?;
    drop(client); // mid-session hang-up, session never closed
    Ok(())
}

/// Replaces rows of an existing committed record with `serving`'s rows,
/// scoped by *service*: only rows whose service axis appears in the
/// incoming record are replaced, so a `bhserve` merge keeps standalone and
/// chaos rows untouched (and vice versa).  Idempotent per service.
pub fn merge_into_record(existing_json: &str, serving: &Record) -> Result<Record, String> {
    let mut merged = Record::from_json(existing_json)?;
    let incoming: std::collections::HashSet<&str> =
        serving.runs.iter().map(|r| r.spec.service.as_str()).collect();
    merged.runs.retain(|r| !incoming.contains(r.spec.service.as_str()));
    merged.runs.extend(serving.runs.iter().cloned());
    merged.validate()?;
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sizes_stay_disjoint_from_benchsuite_grids() {
        // benchsuite sweeps 512/2048/4096 and kernels 2048/4096/8192; a
        // collision would let a serving row shadow a standalone row under
        // the size-scoped baseline exemptions.
        let reserved = [512, 2048, 4096, 8192];
        for cell in cells(Mix::Full) {
            assert!(
                !reserved.contains(&cell.nbodies),
                "serving cell size {} collides with a benchsuite grid size",
                cell.nbodies
            );
        }
        assert_eq!(cells(Mix::Quick).len(), 3);
        assert_eq!(cells(Mix::Full).len(), 6);
    }

    #[test]
    fn specs_carry_the_serving_service_axis() {
        let registry = scenarios::builtin();
        for cell in cells(Mix::Full) {
            let spec = cell.spec(&registry);
            assert_eq!(spec.service, SERVICE_BHSERVE);
            assert_eq!(spec.nbodies, cell.nbodies);
            assert_eq!(spec.steps, JOB_STEPS);
            assert!(spec.key().contains("/bhserve/"), "{}", spec.key());
        }
        // Distinct cells have distinct keys.
        let keys: Vec<String> = cells(Mix::Full).iter().map(|c| c.spec(&registry).key()).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), keys.len());
    }

    #[test]
    fn roles_partition_the_client_indices() {
        let opts = LoadOptions { abuse: true, ..LoadOptions::default() };
        assert!(matches!(role_of(1, &opts), Role::Freeloader));
        assert!(matches!(role_of(2, &opts), Role::Disconnector));
        assert!(matches!(role_of(16, &opts), Role::Session));
        assert!(matches!(role_of(0, &opts), Role::Measured));
        assert!(matches!(role_of(3, &opts), Role::Measured));
        let no_abuse = LoadOptions::default();
        assert!(matches!(role_of(1, &no_abuse), Role::Measured));
        assert!(matches!(role_of(2, &no_abuse), Role::Measured));
    }

    #[test]
    fn merge_replaces_only_serving_rows() {
        let registry = scenarios::builtin();
        let mk_serving = |latency: f64| {
            let mut record = Record::new("test".to_string(), false);
            for cell in cells(Mix::Quick) {
                let sample = Sample {
                    wall_ms: latency,
                    latency_ms: latency,
                    phases: PhaseTimes::default(),
                    total_sim: 1.0,
                    migration_fraction: 0.0,
                    tree_bytes: 0,
                    recovery_ms: 0.0,
                    error_rate: 0.0,
                    stats: RankStats { interactions: 10, ..Default::default() },
                };
                let mut run = RunRecord::from_samples(cell.spec(&registry), &[sample]);
                run.throughput_rps = 5.0;
                record.runs.push(run);
            }
            record
        };
        // An "existing" record with one standalone row plus stale serving rows.
        let mut existing = mk_serving(9.0);
        let cfg = SimConfig::new(512, Machine::power5(2, 1, false), OptLevel::Subspace);
        let standalone = Sample {
            wall_ms: 1.0,
            latency_ms: 0.0,
            phases: PhaseTimes::default(),
            total_sim: 2.0,
            migration_fraction: 0.0,
            tree_bytes: 0,
            recovery_ms: 0.0,
            error_rate: 0.0,
            stats: RankStats { interactions: 99, ..Default::default() },
        };
        existing
            .runs
            .push(RunRecord::from_samples(RunSpec::new("plummer", "upc", &cfg), &[standalone]));
        let fresh = mk_serving(3.0);
        let merged = merge_into_record(&existing.to_json(), &fresh).unwrap();
        assert_eq!(merged.runs.len(), 4, "3 serving rows + 1 standalone");
        let standalone_rows: Vec<_> =
            merged.runs.iter().filter(|r| r.spec.service != SERVICE_BHSERVE).collect();
        assert_eq!(standalone_rows.len(), 1);
        assert_eq!(standalone_rows[0].interactions, 99);
        for row in merged.runs.iter().filter(|r| r.spec.service == SERVICE_BHSERVE) {
            assert_eq!(row.latency_ms.median, 3.0, "stale serving rows must be replaced");
        }
        // Merging the same serving record again is a no-op in shape.
        let again = merge_into_record(&merged.to_json(), &fresh).unwrap();
        assert_eq!(again.runs.len(), merged.runs.len());
    }
}
