//! Per-tenant accounting in deterministic cost counters.
//!
//! Wall-clock is a hopeless quota denomination for a simulation service —
//! the same job costs different milliseconds on a loaded box — so tenants
//! are charged in the engine's *deterministic* counters instead:
//! interactions (the dominant cost driver, what the paper's own cost model
//! charges bodies by) and tree operations.  Two properties follow:
//!
//! * **Reproducibility** — the ledger total for a set of jobs equals the
//!   sum of the same jobs run standalone, bit for bit.  The integration
//!   suite pins this.
//! * **Fair coalescing** — when the batch layer coalesces identical jobs
//!   into one engine run, every requester is charged the full deterministic
//!   cost of the job it asked for.  Sharing the computation is the
//!   *server's* win, not a billing loophole.
//!
//! Quotas are **post-paid**: a request is admitted while the tenant's spent
//! interactions are below the limit and charged its actual cost afterwards,
//! so a tenant can overshoot by at most one job.  Pre-charging would need a
//! cost *prediction*, which for Barnes-Hut depends on the evolving body
//! distribution; the overshoot is bounded and the ledger stays exact.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::proto::{Reject, E_QUOTA_EXCEEDED};
use serde::Value;

/// What one tenant has spent so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Usage {
    /// Body-body and body-cell interactions across all charged work.
    pub interactions: u64,
    /// Tree operations (inserts, merges, refreshes) across all charged work.
    pub tree_ops: u64,
    /// Number of charged engine runs (session steps count per chunk).
    pub runs: u64,
}

/// The quota ledger shared by every connection.
pub struct QuotaBook {
    /// Limit applied to tenants without an override, in interactions.
    /// `None` means unmetered.
    default_limit: Option<u64>,
    /// Per-tenant limit overrides, in interactions.
    overrides: HashMap<String, u64>,
    ledgers: Mutex<HashMap<String, Usage>>,
}

impl QuotaBook {
    /// A ledger with the given default limit and per-tenant overrides.
    pub fn new(default_limit: Option<u64>, overrides: Vec<(String, u64)>) -> QuotaBook {
        QuotaBook {
            default_limit,
            overrides: overrides.into_iter().collect(),
            ledgers: Mutex::new(HashMap::new()),
        }
    }

    /// The interaction limit that applies to `tenant`.
    pub fn limit(&self, tenant: &str) -> Option<u64> {
        self.overrides.get(tenant).copied().or(self.default_limit)
    }

    /// Admission check: rejects with [`E_QUOTA_EXCEEDED`] when the tenant
    /// has already spent its interaction quota.  The rejection carries the
    /// counter name, current usage and limit so clients can act on it
    /// without parsing prose.
    pub fn admit(&self, tenant: &str) -> Result<(), Reject> {
        let Some(limit) = self.limit(tenant) else { return Ok(()) };
        let used = self.usage(tenant).interactions;
        if used >= limit {
            let mut reject = Reject::new(
                E_QUOTA_EXCEEDED,
                format!(
                    "tenant {tenant:?} has spent {used} of {limit} quota interactions; \
                     further work is refused until the quota is raised"
                ),
            );
            reject.extra = vec![
                ("counter".to_string(), Value::String("interactions".to_string())),
                ("used".to_string(), Value::UInt(used)),
                ("limit".to_string(), Value::UInt(limit)),
            ];
            return Err(reject);
        }
        Ok(())
    }

    /// Charges one run's deterministic counters to `tenant`.
    pub fn charge(&self, tenant: &str, stats: &pgas::RankStats) {
        let mut ledgers = self.ledgers.lock().unwrap();
        let usage = ledgers.entry(tenant.to_string()).or_default();
        usage.interactions += stats.interactions;
        usage.tree_ops += stats.tree_ops;
        usage.runs += 1;
    }

    /// The tenant's current spend (zero if never charged).
    pub fn usage(&self, tenant: &str) -> Usage {
        self.ledgers.lock().unwrap().get(tenant).copied().unwrap_or_default()
    }

    /// Every tenant that has been charged, sorted by name — the server's
    /// shutdown accounting summary.
    pub fn all(&self) -> Vec<(String, Usage)> {
        let mut rows: Vec<(String, Usage)> =
            self.ledgers.lock().unwrap().iter().map(|(t, u)| (t.clone(), *u)).collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(interactions: u64, tree_ops: u64) -> pgas::RankStats {
        pgas::RankStats { interactions, tree_ops, ..Default::default() }
    }

    #[test]
    fn ledger_is_additive_and_per_tenant() {
        let book = QuotaBook::new(None, Vec::new());
        book.charge("a", &stats(100, 7));
        book.charge("a", &stats(50, 3));
        book.charge("b", &stats(1, 1));
        assert_eq!(book.usage("a"), Usage { interactions: 150, tree_ops: 10, runs: 2 });
        assert_eq!(book.usage("b"), Usage { interactions: 1, tree_ops: 1, runs: 1 });
        assert_eq!(book.usage("nobody"), Usage::default());
        let all = book.all();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "a");
    }

    #[test]
    fn quotas_are_post_paid_with_bounded_overshoot() {
        let book = QuotaBook::new(Some(100), Vec::new());
        assert!(book.admit("t").is_ok());
        // A job that overshoots is still charged in full...
        book.charge("t", &stats(150, 0));
        // ...and the next admission is refused with the structured fields.
        let reject = book.admit("t").unwrap_err();
        assert_eq!(reject.code, E_QUOTA_EXCEEDED);
        let v = reject.to_value();
        assert_eq!(v.get("used").unwrap().as_u64(), Some(150));
        assert_eq!(v.get("limit").unwrap().as_u64(), Some(100));
        assert_eq!(v.get("counter").unwrap().as_str(), Some("interactions"));
    }

    #[test]
    fn overrides_beat_the_default_limit() {
        let book = QuotaBook::new(Some(1000), vec![("freeloader".to_string(), 10)]);
        assert_eq!(book.limit("freeloader"), Some(10));
        assert_eq!(book.limit("anyone-else"), Some(1000));
        book.charge("freeloader", &stats(10, 0));
        assert!(book.admit("freeloader").is_err());
        assert!(book.admit("anyone-else").is_ok());
        let unmetered = QuotaBook::new(None, Vec::new());
        assert_eq!(unmetered.limit("x"), None);
        unmetered.charge("x", &stats(u64::MAX / 2, 0));
        assert!(unmetered.admit("x").is_ok(), "no limit means no refusal");
    }
}
