//! Single-flight job coalescing: identical small jobs share one engine run.
//!
//! The engine is deterministic — a job's [`crate::proto::Job::identity`]
//! (scenario, backend, every config axis, physics parameters by bit
//! pattern) fully determines its output — so when many tenants submit the
//! *same* job concurrently (the common case under a benchmark mix, and a
//! realistic one for popular demo workloads), running it once and sharing
//! the result is observably identical to running it N times.  The first
//! requester becomes the *leader* and computes; concurrent duplicates
//! become *followers* and wait on the leader's flight.  Followers never
//! hold an engine-run permit while waiting, so coalescing can only reduce
//! pressure on the run gate, never deadlock it.
//!
//! Billing is unaffected: every requester is charged the full deterministic
//! cost of the job ([`crate::quota`]), so coalescing is a throughput
//! optimization, not a discount.
//!
//! A leader that dies without completing (a panic in the engine) abandons
//! its flight; followers detect this and fall back to computing the job
//! themselves rather than waiting forever.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// The outcome of one engine run, shared between coalesced requesters.
pub struct RunOutput {
    /// The simulation result (bodies, phases, counters).
    pub result: engine::SimResult,
    /// Leader's wall-clock for the run, in milliseconds.
    pub wall_ms: f64,
}

enum FlightState {
    Pending,
    Done(Arc<RunOutput>),
    Abandoned,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// Removes the flight from the table and marks it abandoned if the leader
/// never completed it — the path taken when the engine panics out of the
/// leader's stack frame.
struct LeaderGuard<'a> {
    runner: &'a BatchRunner,
    key: String,
    flight: Arc<Flight>,
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        self.runner.flights.lock().unwrap().remove(&self.key);
        let mut state = self.flight.state.lock().unwrap();
        if matches!(*state, FlightState::Pending) {
            *state = FlightState::Abandoned;
        }
        self.flight.cv.notify_all();
    }
}

/// The shared coalescing table.
#[derive(Default)]
pub struct BatchRunner {
    flights: Mutex<HashMap<String, Arc<Flight>>>,
}

impl BatchRunner {
    /// An empty table.
    pub fn new() -> BatchRunner {
        BatchRunner::default()
    }

    /// Runs the job identified by `key`, coalescing with any identical job
    /// already in flight.  Returns the (possibly shared) output and whether
    /// this caller was a follower (`true` — the response's `batched` flag).
    ///
    /// `compute` must be the caller's own closure for the job: the leader
    /// consumes it; a follower keeps it untouched unless the leader
    /// abandoned the flight, in which case the follower computes alone.
    pub fn run(&self, key: String, compute: impl FnOnce() -> RunOutput) -> (Arc<RunOutput>, bool) {
        let (flight, leader) = {
            let mut flights = self.flights.lock().unwrap();
            match flights.get(&key) {
                Some(flight) => (Arc::clone(flight), false),
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        cv: Condvar::new(),
                    });
                    flights.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if leader {
            let guard = LeaderGuard { runner: self, key, flight: Arc::clone(&flight) };
            let output = Arc::new(compute());
            *flight.state.lock().unwrap() = FlightState::Done(Arc::clone(&output));
            drop(guard); // removes the flight and wakes the followers
            return (output, false);
        }

        let mut state = flight.state.lock().unwrap();
        loop {
            match &*state {
                FlightState::Done(output) => return (Arc::clone(output), true),
                FlightState::Abandoned => {
                    drop(state);
                    // The leader died; compute alone rather than re-enter the
                    // table (re-entering could chain onto another doomed
                    // flight under a persistent failure).
                    return (Arc::new(compute()), false);
                }
                FlightState::Pending => state = flight.cv.wait(state).unwrap(),
            }
        }
    }

    /// Number of flights currently pending (diagnostics).
    pub fn in_flight(&self) -> usize {
        self.flights.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn output(tag: f64) -> RunOutput {
        let cfg = engine::SimConfig::test(1, 1, engine::OptLevel::Baseline);
        let mut result = engine::SimResult::aggregate(&cfg, Vec::new(), Vec::new());
        result.total = tag;
        RunOutput { result, wall_ms: tag }
    }

    #[test]
    fn concurrent_identical_jobs_share_one_computation() {
        let runner = Arc::new(BatchRunner::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let gate = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (runner, computes, gate) = (runner.clone(), computes.clone(), gate.clone());
                std::thread::spawn(move || {
                    gate.wait();
                    runner.run("same-job".to_string(), || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads (released by the same barrier) to join it
                        // as followers.
                        std::thread::sleep(std::time::Duration::from_millis(200));
                        output(42.0)
                    })
                })
            })
            .collect();
        let outcomes: Vec<(Arc<RunOutput>, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(computes.load(Ordering::SeqCst) < 8, "coalescing must deduplicate work");
        assert!(
            outcomes.iter().any(|(_, batched)| *batched),
            "at least one request must have been served from the shared flight"
        );
        for (out, _) in &outcomes {
            assert_eq!(out.wall_ms, 42.0);
        }
        assert_eq!(runner.in_flight(), 0, "flights must not leak");
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let runner = BatchRunner::new();
        let (a, batched_a) = runner.run("a".to_string(), || output(1.0));
        let (b, batched_b) = runner.run("b".to_string(), || output(2.0));
        assert!(!batched_a && !batched_b);
        assert_eq!(a.wall_ms, 1.0);
        assert_eq!(b.wall_ms, 2.0);
        // Sequential reuse of a key recomputes: the flight is gone.
        let (a2, batched) = runner.run("a".to_string(), || output(3.0));
        assert!(!batched);
        assert_eq!(a2.wall_ms, 3.0);
    }

    #[test]
    fn abandoned_flights_fall_back_to_solo_computation() {
        let runner = Arc::new(BatchRunner::new());
        let entered = Arc::new(Barrier::new(2));
        let leader = {
            let (runner, entered) = (runner.clone(), entered.clone());
            std::thread::spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    runner.run("doomed".to_string(), || {
                        entered.wait();
                        // Give the follower time to park on the flight.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("engine blew up");
                    })
                }));
                assert!(result.is_err());
            })
        };
        entered.wait();
        let (out, batched) = runner.run("doomed".to_string(), || output(7.0));
        assert!(!batched, "fallback computation is not a coalesced result");
        assert_eq!(out.wall_ms, 7.0);
        leader.join().unwrap();
        assert_eq!(runner.in_flight(), 0);
    }
}
