//! The `bhserve` request/response vocabulary.
//!
//! Every frame payload is one JSON object.  Requests carry an `op` field;
//! responses carry `ok` — `true` with op-specific fields, or `false` with a
//! stable machine-readable `code` and a human-readable `error`.  The
//! configuration codes (`E_NBODIES`, `E_DT`, ...) are relayed verbatim from
//! [`engine::ConfigError`], so a remote client sees exactly the vocabulary
//! a local `SimConfig::validate()` caller does; the service adds its own
//! codes (see the `E_*` consts here) for protocol, dispatch, session and
//! quota failures.
//!
//! The vendored serde stack serializes but does not deserialize, so
//! requests are decoded by hand over the [`Value`] tree — the same pattern
//! `engine::bench` uses for committed records.
//!
//! Body state in `snapshot` responses is **bit-exact**: every `f64` is
//! encoded as the 16-hex-digit big-endian rendering of its IEEE-754 bits
//! ([`hex_f64`]), never as a JSON float, so a snapshot round-trips with no
//! precision loss and session-equivalence can be pinned bit-for-bit.

use engine::{BackendRegistry, SimConfig, TreePolicy, WalkMode};
use pgas::Machine;
use scenarios::Registry as ScenarioRegistry;
use serde::Value;

/// Malformed request: not a JSON object, missing/ill-typed fields.
pub const E_PROTO: &str = "E_PROTO";
/// The `op` field names no operation this server understands.
pub const E_UNKNOWN_OP: &str = "E_UNKNOWN_OP";
/// The `scenario` field names no registered scenario.
pub const E_UNKNOWN_SCENARIO: &str = "E_UNKNOWN_SCENARIO";
/// The `backend` field names no registered backend.
pub const E_UNKNOWN_BACKEND: &str = "E_UNKNOWN_BACKEND";
/// The backend rejected the configuration ([`engine::Backend::supports`])
/// for a reason that is not a [`engine::ConfigError`] (those relay their
/// own code).
pub const E_UNSUPPORTED: &str = "E_UNSUPPORTED";
/// The `session` field names no live session on this connection.
pub const E_NO_SESSION: &str = "E_NO_SESSION";
/// The backend does not support sessions
/// ([`engine::Backend::supports_sessions`]).
pub const E_SESSION_UNSUPPORTED: &str = "E_SESSION_UNSUPPORTED";
/// Sessions require the per-step rebuild tree policy (the policy under
/// which chunked stepping is bit-identical to one long run).
pub const E_SESSION_POLICY: &str = "E_SESSION_POLICY";
/// The connection reached its live-session cap.
pub const E_SESSION_LIMIT: &str = "E_SESSION_LIMIT";
/// The server was started without a snapshot store (`--snap-dir`), so
/// `suspend`/`resume` are not offered.
pub const E_SNAP_UNAVAILABLE: &str = "E_SNAP_UNAVAILABLE";
/// The `token` field names no snapshot in the server's store.
pub const E_NO_SNAPSHOT: &str = "E_NO_SNAPSHOT";
/// The token's snapshot exists but failed integrity or schema checks.
pub const E_SNAP_CORRUPT: &str = "E_SNAP_CORRUPT";
/// The tenant's deterministic cost ledger reached its quota.
pub const E_QUOTA_EXCEEDED: &str = "E_QUOTA_EXCEEDED";
/// The server is shedding load: its bounded in-flight limit is reached.
/// The rejection carries a `retry_after_ms` hint; clients should back off
/// and retry ([`crate::server::Client::call_with_retry`] does).
pub const E_OVERLOADED: &str = "E_OVERLOADED";

/// A rejected request: the stable code, the human-readable message, and any
/// op-specific extra fields (quota rejections attach the counter, usage and
/// limit).
#[derive(Debug, Clone)]
pub struct Reject {
    /// Stable machine-readable code.
    pub code: String,
    /// Human-readable description.
    pub error: String,
    /// Extra response fields appended after `code`/`error`.
    pub extra: Vec<(String, Value)>,
}

impl Reject {
    /// A rejection with no extra fields.
    pub fn new(code: &str, error: impl Into<String>) -> Reject {
        Reject { code: code.to_string(), error: error.into(), extra: Vec::new() }
    }

    /// Renders the rejection as its wire object.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("ok".to_string(), Value::Bool(false)),
            ("code".to_string(), Value::String(self.code.clone())),
            ("error".to_string(), Value::String(self.error.clone())),
        ];
        fields.extend(self.extra.iter().cloned());
        Value::Object(fields)
    }
}

/// Builds an `ok: true` response object from op-specific fields.
pub fn ok_response(fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("ok".to_string(), Value::Bool(true))];
    all.extend(fields);
    Value::Object(all)
}

/// The 16-hex-digit big-endian IEEE-754 bit pattern of an `f64` — the
/// bit-exact wire encoding of body state.
pub fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes a [`hex_f64`] rendering back into the identical `f64`.
pub fn unhex_f64(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// One fully-decoded job: a scenario, a backend and the complete
/// [`SimConfig`] the engine will run.
#[derive(Debug, Clone)]
pub struct Job {
    /// Scenario registry key.
    pub scenario: String,
    /// Backend registry key.
    pub backend: String,
    /// The full solver configuration (validated by the caller via
    /// [`engine::Backend::supports`]).
    pub cfg: SimConfig,
}

impl Job {
    /// Canonical identity of the job: every axis that affects the engine's
    /// output or cost.  Two requests with equal identities are the *same
    /// computation* and may be coalesced into one engine run
    /// ([`crate::batch`]); physics parameters are keyed by their exact bit
    /// patterns, not their decimal renderings.
    pub fn identity(&self) -> String {
        let c = &self.cfg;
        format!(
            "{}/{}/{}/{}/{}/n{}/s{}/t{}+{}/m{}x{}/θ{}/ε{}/δ{}",
            self.scenario,
            self.backend,
            c.opt.name(),
            c.tree_policy.spec_label(),
            c.walk.name(),
            c.nbodies,
            c.seed,
            c.steps,
            c.measured_steps,
            c.machine.nodes,
            c.machine.threads_per_node,
            hex_f64(c.theta),
            hex_f64(c.eps),
            hex_f64(c.dt),
        )
    }
}

pub(crate) fn str_of(v: &Value, key: &str) -> Result<Option<String>, Reject> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::String(s)) => Ok(Some(s.clone())),
        Some(_) => Err(Reject::new(E_PROTO, format!("field {key:?} must be a string"))),
    }
}

pub(crate) fn u64_of(v: &Value, key: &str) -> Result<Option<u64>, Reject> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(val) => val.as_u64().map(Some).ok_or_else(|| {
            Reject::new(E_PROTO, format!("field {key:?} must be a non-negative integer"))
        }),
    }
}

pub(crate) fn f64_of(v: &Value, key: &str) -> Result<Option<f64>, Reject> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(val) => val
            .as_f64()
            .map(Some)
            .ok_or_else(|| Reject::new(E_PROTO, format!("field {key:?} must be a number"))),
    }
}

/// The required string field every accounted request carries.
pub fn tenant_of(v: &Value) -> Result<String, Reject> {
    str_of(v, "tenant")?.ok_or_else(|| Reject::new(E_PROTO, "field \"tenant\" is required"))
}

/// Decodes the job description shared by the `run` and `open` operations.
///
/// Required: `n` (bodies).  Everything else defaults: scenario `plummer`,
/// backend `upc`, the scenario's recommended θ/ε/dt tuning, the paper's
/// 4-steps/2-measured protocol, opt level `subspace`, per-step rebuild,
/// per-body walk, a 2-node × 1-thread emulated machine.  Unknown scenario
/// and backend keys fail with the shared did-you-mean error
/// ([`engine::suggest::unknown_key`]).
pub fn decode_job(
    v: &Value,
    scenarios: &ScenarioRegistry,
    backends: &BackendRegistry,
) -> Result<Job, Reject> {
    let scenario_name = str_of(v, "scenario")?.unwrap_or_else(|| "plummer".to_string());
    let backend_name = str_of(v, "backend")?.unwrap_or_else(|| "upc".to_string());

    let scenario = scenarios.get(&scenario_name).ok_or_else(|| {
        Reject::new(
            E_UNKNOWN_SCENARIO,
            engine::suggest::unknown_key("scenario", &scenario_name, &scenarios.names()),
        )
    })?;
    if backends.get(&backend_name).is_none() {
        return Err(Reject::new(
            E_UNKNOWN_BACKEND,
            engine::suggest::unknown_key("backend", &backend_name, &backends.names()),
        ));
    }

    let nbodies = u64_of(v, "n")?
        .ok_or_else(|| Reject::new(E_PROTO, "field \"n\" (number of bodies) is required"))?
        as usize;
    let nodes = u64_of(v, "nodes")?.unwrap_or(2) as usize;
    let tpn = u64_of(v, "threads_per_node")?.unwrap_or(1) as usize;
    if nodes == 0 || tpn == 0 {
        return Err(Reject::new(E_PROTO, "\"nodes\" and \"threads_per_node\" must be positive"));
    }

    let opt = match str_of(v, "opt")? {
        Some(name) => engine::OptLevel::from_name(&name).ok_or_else(|| {
            let names: Vec<&str> = engine::OptLevel::ALL.iter().map(|l| l.name()).collect();
            Reject::new(E_PROTO, engine::suggest::unknown_key("opt level", &name, &names))
        })?,
        None => engine::OptLevel::Subspace,
    };

    let policy = match str_of(v, "policy")? {
        Some(name) => {
            let mut policy = TreePolicy::from_name(&name).ok_or_else(|| {
                Reject::new(
                    E_PROTO,
                    engine::suggest::unknown_key(
                        "tree policy",
                        &name,
                        &["rebuild", "reuse", "adaptive"],
                    ),
                )
            })?;
            if let TreePolicy::Reuse { mut rebuild_every, mut drift_threshold } = policy {
                if let Some(every) = u64_of(v, "rebuild_every")? {
                    rebuild_every = every as usize;
                }
                if let Some(drift) = f64_of(v, "drift_threshold")? {
                    drift_threshold = drift;
                }
                policy = TreePolicy::Reuse { rebuild_every, drift_threshold };
            }
            policy
        }
        None => TreePolicy::Rebuild,
    };

    let walk = match str_of(v, "walk")? {
        Some(name) => WalkMode::from_name(&name).ok_or_else(|| {
            Reject::new(
                E_PROTO,
                engine::suggest::unknown_key("walk mode", &name, &["per-body", "group"]),
            )
        })?,
        None => WalkMode::PerBody,
    };

    let tuning = scenario.recommended_config();
    let machine = Machine::power5(nodes, tpn, false);
    let mut cfg = SimConfig::new(nbodies, machine, opt);
    cfg.seed = u64_of(v, "seed")?.unwrap_or(engine::config::DEFAULT_SEED);
    cfg.steps = u64_of(v, "steps")?.unwrap_or(4) as usize;
    cfg.measured_steps = u64_of(v, "measured")?.unwrap_or_else(|| 2.min(cfg.steps as u64)) as usize;
    cfg.tree_policy = policy;
    cfg.walk = walk;
    cfg.theta = f64_of(v, "theta")?.unwrap_or(tuning.theta);
    cfg.eps = f64_of(v, "eps")?.unwrap_or(tuning.eps);
    cfg.dt = f64_of(v, "dt")?.unwrap_or(tuning.dt);

    Ok(Job { scenario: scenario_name, backend: backend_name, cfg })
}

/// Renders the measured outcome of one engine run (or one session step
/// chunk) as the response fields every dispatch path shares.
pub fn run_fields(result: &engine::SimResult, wall_ms: f64) -> Vec<(String, Value)> {
    let stats = result.total_stats();
    let phases = Value::Object(
        engine::Phase::ALL
            .iter()
            .map(|&p| (p.key().to_string(), Value::Float(result.phases.get(p))))
            .collect(),
    );
    vec![
        ("wall_ms".to_string(), Value::Float(wall_ms)),
        ("phases".to_string(), phases),
        ("total_sim".to_string(), Value::Float(result.total)),
        ("migration_fraction".to_string(), Value::Float(result.migration_fraction)),
        ("tree_bytes".to_string(), Value::UInt(result.tree_bytes)),
        ("interactions".to_string(), Value::UInt(stats.interactions)),
        ("macs".to_string(), Value::UInt(stats.macs)),
        ("tree_ops".to_string(), Value::UInt(stats.tree_ops)),
        ("remote_gets".to_string(), Value::UInt(stats.remote_gets)),
        ("remote_puts".to_string(), Value::UInt(stats.remote_puts)),
        ("messages".to_string(), Value::UInt(stats.messages)),
        ("bytes_in".to_string(), Value::UInt(stats.bytes_in)),
        ("bytes_out".to_string(), Value::UInt(stats.bytes_out)),
        ("lock_acquires".to_string(), Value::UInt(stats.lock_acquires)),
    ]
}

/// Renders a body list as the bit-exact snapshot encoding.
pub fn snapshot_bodies(bodies: &[nbody::Body]) -> Value {
    Value::Array(
        bodies
            .iter()
            .map(|b| {
                let vec3 = |v: nbody::Vec3| {
                    Value::Array(vec![
                        Value::String(hex_f64(v.x)),
                        Value::String(hex_f64(v.y)),
                        Value::String(hex_f64(v.z)),
                    ])
                };
                Value::Object(vec![
                    ("id".to_string(), Value::UInt(b.id as u64)),
                    ("mass".to_string(), Value::String(hex_f64(b.mass))),
                    ("pos".to_string(), vec3(b.pos)),
                    ("vel".to_string(), vec3(b.vel)),
                    ("acc".to_string(), vec3(b.acc)),
                    ("phi".to_string(), Value::String(hex_f64(b.phi))),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use barnes_hut_upc::backends;
    use scenarios::builtin;

    fn parse(text: &str) -> Value {
        serde_json::from_str(text).unwrap()
    }

    #[test]
    fn hex_encoding_is_bit_exact() {
        for v in [0.0, -0.0, 1.0, -1.5, f64::MIN_POSITIVE, 1.0 / 3.0, 6.02214076e23] {
            let bits = v.to_bits();
            assert_eq!(unhex_f64(&hex_f64(v)).unwrap().to_bits(), bits);
        }
        assert_eq!(unhex_f64("zz"), None);
        assert_eq!(unhex_f64("0123"), None, "length must be exactly 16");
    }

    #[test]
    fn jobs_decode_with_defaults_and_full_axes() {
        let scenarios = builtin();
        let registry = backends();
        let job = decode_job(&parse(r#"{"n": 64}"#), &scenarios, &registry).unwrap();
        assert_eq!(job.scenario, "plummer");
        assert_eq!(job.backend, "upc");
        assert_eq!(job.cfg.nbodies, 64);
        assert_eq!(job.cfg.steps, 4);
        assert_eq!(job.cfg.measured_steps, 2);
        assert_eq!(job.cfg.opt, engine::OptLevel::Subspace);
        assert!(job.cfg.validate().is_ok());

        let full = parse(
            r#"{"n": 128, "scenario": "king", "backend": "upc", "opt": "cache-local-tree",
                "policy": "reuse", "rebuild_every": 4, "drift_threshold": 0.5,
                "walk": "group", "steps": 8, "measured": 4, "seed": 9,
                "nodes": 4, "threads_per_node": 2, "theta": 0.8, "eps": 0.1, "dt": 0.01}"#,
        );
        let job = decode_job(&full, &scenarios, &registry).unwrap();
        assert_eq!(job.scenario, "king");
        assert_eq!(job.cfg.opt, engine::OptLevel::CacheLocalTree);
        assert_eq!(job.cfg.tree_policy.spec_label(), "reuse[e4,d0.5]");
        assert_eq!(job.cfg.walk, engine::WalkMode::Group);
        assert_eq!(job.cfg.seed, 9);
        assert_eq!(job.cfg.machine.nodes, 4);
        assert_eq!(job.cfg.machine.threads_per_node, 2);
        assert_eq!(job.cfg.theta, 0.8);
    }

    #[test]
    fn unknown_keys_reject_with_did_you_mean() {
        let scenarios = builtin();
        let registry = backends();
        let err = decode_job(&parse(r#"{"n": 64, "scenario": "plumer"}"#), &scenarios, &registry)
            .unwrap_err();
        assert_eq!(err.code, E_UNKNOWN_SCENARIO);
        assert!(err.error.contains("did you mean \"plummer\"?"), "{}", err.error);
        let err = decode_job(&parse(r#"{"n": 64, "backend": "driect"}"#), &scenarios, &registry)
            .unwrap_err();
        assert_eq!(err.code, E_UNKNOWN_BACKEND);
        assert!(err.error.contains("did you mean \"direct\"?"), "{}", err.error);
    }

    #[test]
    fn job_identity_keys_every_axis() {
        let scenarios = builtin();
        let registry = backends();
        let base = decode_job(&parse(r#"{"n": 64}"#), &scenarios, &registry).unwrap();
        for variant in [
            r#"{"n": 65}"#,
            r#"{"n": 64, "seed": 2}"#,
            r#"{"n": 64, "backend": "direct"}"#,
            r#"{"n": 64, "steps": 5}"#,
            r#"{"n": 64, "theta": 0.9}"#,
            r#"{"n": 64, "nodes": 3}"#,
            r#"{"n": 64, "walk": "group"}"#,
        ] {
            let job = decode_job(&parse(variant), &scenarios, &registry).unwrap();
            assert_ne!(job.identity(), base.identity(), "{variant}");
        }
        let same = decode_job(&parse(r#"{"n": 64}"#), &scenarios, &registry).unwrap();
        assert_eq!(same.identity(), base.identity());
    }

    #[test]
    fn rejects_render_their_code_and_extras() {
        let mut reject = Reject::new(E_QUOTA_EXCEEDED, "over quota");
        reject.extra.push(("used".to_string(), Value::UInt(101)));
        let v = reject.to_value();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("code").unwrap().as_str(), Some(E_QUOTA_EXCEEDED));
        assert_eq!(v.get("used").unwrap().as_u64(), Some(101));
        let ok = ok_response(vec![("pong".to_string(), Value::Bool(true))]);
        assert_eq!(ok.get("ok").unwrap().as_bool(), Some(true));
    }
}
