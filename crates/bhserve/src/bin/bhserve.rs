//! The `bhserve` daemon binary: parse options, start the server, park.
//!
//! Prints `bhserve: listening on <addr>` on stdout once the socket is
//! bound (scripts — the CI smoke job, `bhload` wrappers — parse this line
//! to learn the port when started with `--listen 127.0.0.1:0`).

use bhserve::{Server, ServerOptions};

fn usage() -> ! {
    eprintln!(
        "bhserve — multi-tenant Barnes-Hut simulation service

USAGE:
    bhserve [OPTIONS]

OPTIONS:
    --listen ADDR             listen address (default 127.0.0.1:0; port 0 picks a free port)
    --max-concurrent-runs N   engine runs allowed at once (default 2)
    --quota-interactions N    default per-tenant quota, in interactions (default: unmetered)
    --tenant-quota NAME=N     per-tenant quota override (repeatable)
    --max-sessions N          live sessions allowed per connection (default 16)
    --batch-max-bodies N      jobs up to N bodies may be coalesced (default 4096)
    --snap-dir DIR            snapshot store for suspend/resume (default: disabled);
                              suspended sessions survive daemon restarts pointed
                              at the same directory
    --read-timeout-secs N     per-connection read deadline; idle connections
                              (including connect-and-say-nothing clients) are
                              reaped after N seconds (default 600; 0 = never)
    --write-timeout-secs N    per-connection write deadline (default 60; 0 = never)
    --idle-session-secs N     evict sessions idle longer than N seconds
                              (default: keep until the connection closes)
    --max-inflight N          shed heavy requests beyond N concurrently
                              dispatching, with E_OVERLOADED + retry_after_ms
                              (default: never shed)
    --faults SPEC             deterministic fault-injection plan, e.g.
                              seed=7,frame.read.short@p0.01,snap.chunk.torn@n2
                              (see the faultline docs for the site vocabulary)
    --help                    show this help"
    );
    std::process::exit(2)
}

fn parse_args() -> ServerOptions {
    let mut opts = ServerOptions::default();
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("bhserve: {flag} requires a value");
            std::process::exit(2)
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => opts.addr = value(&mut args, "--listen"),
            "--max-concurrent-runs" => {
                opts.max_concurrent_runs = parse_number(&value(&mut args, "--max-concurrent-runs"))
            }
            "--quota-interactions" => {
                opts.default_quota = Some(parse_number(&value(&mut args, "--quota-interactions")))
            }
            "--tenant-quota" => {
                let spec = value(&mut args, "--tenant-quota");
                let Some((name, limit)) = spec.split_once('=') else {
                    eprintln!("bhserve: --tenant-quota expects NAME=N, got {spec:?}");
                    std::process::exit(2)
                };
                opts.tenant_quotas.push((name.to_string(), parse_number(limit)));
            }
            "--max-sessions" => {
                opts.max_sessions_per_conn = parse_number(&value(&mut args, "--max-sessions"))
            }
            "--batch-max-bodies" => {
                opts.batch_max_bodies = parse_number(&value(&mut args, "--batch-max-bodies"))
            }
            "--snap-dir" => opts.snap_dir = Some(value(&mut args, "--snap-dir")),
            "--read-timeout-secs" => {
                opts.read_timeout =
                    timeout_of(parse_number(&value(&mut args, "--read-timeout-secs")))
            }
            "--write-timeout-secs" => {
                opts.write_timeout =
                    timeout_of(parse_number(&value(&mut args, "--write-timeout-secs")))
            }
            "--idle-session-secs" => {
                opts.idle_session_secs =
                    Some(parse_number(&value(&mut args, "--idle-session-secs")))
            }
            "--max-inflight" => {
                opts.max_inflight = Some(parse_number(&value(&mut args, "--max-inflight")))
            }
            "--faults" => {
                let spec = value(&mut args, "--faults");
                opts.faults = engine::FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bhserve: {e}");
                    std::process::exit(2)
                });
            }
            "--help" | "-h" => usage(),
            other => {
                const FLAGS: [&str; 13] = [
                    "--listen",
                    "--max-concurrent-runs",
                    "--quota-interactions",
                    "--tenant-quota",
                    "--max-sessions",
                    "--batch-max-bodies",
                    "--snap-dir",
                    "--read-timeout-secs",
                    "--write-timeout-secs",
                    "--idle-session-secs",
                    "--max-inflight",
                    "--faults",
                    "--help",
                ];
                match engine::suggest::suggest(other, FLAGS) {
                    Some(near) => {
                        eprintln!("bhserve: unknown option: {other} (did you mean {near}?)")
                    }
                    None => eprintln!("bhserve: unknown option: {other}"),
                }
                usage()
            }
        }
    }
    opts
}

/// `0` disables a deadline (blocking forever), anything else is seconds.
fn timeout_of(secs: u64) -> Option<std::time::Duration> {
    (secs > 0).then(|| std::time::Duration::from_secs(secs))
}

fn parse_number<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bhserve: not a valid number: {text:?}");
        std::process::exit(2)
    })
}

fn main() {
    let opts = parse_args();
    let server = match Server::start(opts, scenarios::builtin(), barnes_hut_upc::backends()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bhserve: failed to start: {e}");
            std::process::exit(1)
        }
    };
    println!("bhserve: listening on {}", server.addr());
    // The accept loop runs on its own thread; park the main thread until
    // the process is killed.  `server` must stay alive — dropping it stops
    // the accept loop.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
