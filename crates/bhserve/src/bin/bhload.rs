//! The `bhload` stress driver: point it at a live `bhserve`, drive the
//! mix, report an `engine::bench` record, optionally merge it into a
//! committed `BENCH_*.json` and gate against a baseline.
//!
//! Exit codes follow `benchsuite`: 0 success, 1 perf regression (or a
//! failed load run), 2 usage, 3 schema or I/O problems.

use bhserve::load::{self, LoadOptions, Mix};
use engine::bench::{diff_against_baseline, Record};

fn usage() -> ! {
    eprintln!(
        "bhload — stress harness for the bhserve simulation service

USAGE:
    bhload --addr HOST:PORT [OPTIONS]

OPTIONS:
    --addr HOST:PORT     the live bhserve to drive (required)
    --clients N          concurrent simulated clients (default 1000)
    --threads N          worker threads multiplexing the clients (default 32)
    --mix quick|full     cell grid to drive (default quick)
    --session-every N    every Nth client runs a session flow (default 16; 0 disables)
    --abuse              mix in an over-quota tenant and a mid-session disconnect
    --chaos              chaos mode: rows land under the chaos service axis,
                         measured requests recover from faults/restarts via
                         retries (reported as recovery_ms/error_rate), and the
                         mix adds mid-frame aborters and suspend/resume
                         bit-identity probes
    --suspend-one        open one probe session, suspend it, print its token
                         and digest as one JSON line and exit (chaos CI)
    --resume-token TOK   resume TOK, print the digest as one JSON line and
                         exit; it must equal the one --suspend-one printed
    --json               print the serving record as JSON on stdout
    --out PATH           write the serving record to PATH
    --merge PATH         replace the serving rows of an existing record at PATH
    --baseline PATH      diff the serving record against a committed baseline
    --threshold PCT      regression threshold percent for --baseline (default 25)
    --help               show this help"
    );
    std::process::exit(2)
}

fn fail_schema(msg: &str) -> ! {
    eprintln!("bhload: {msg}");
    std::process::exit(3)
}

struct Options {
    load: LoadOptions,
    json: bool,
    out: Option<String>,
    merge: Option<String>,
    baseline: Option<String>,
    threshold: f64,
    suspend_one: bool,
    resume_token: Option<String>,
}

fn parse_args() -> Options {
    let mut load = LoadOptions::default();
    let mut addr: Option<String> = None;
    let mut opts = Options {
        load: load.clone(),
        json: false,
        out: None,
        merge: None,
        baseline: None,
        threshold: 25.0,
        suspend_one: false,
        resume_token: None,
    };
    let mut args = std::env::args().skip(1);
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("bhload: {flag} requires a value");
            std::process::exit(2)
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(value(&mut args, "--addr")),
            "--clients" => load.clients = parse_number(&value(&mut args, "--clients")),
            "--threads" => load.threads = parse_number(&value(&mut args, "--threads")),
            "--mix" => {
                load.mix = match value(&mut args, "--mix").as_str() {
                    "quick" => Mix::Quick,
                    "full" => Mix::Full,
                    other => {
                        eprintln!("bhload: --mix must be quick or full, got {other:?}");
                        std::process::exit(2)
                    }
                }
            }
            "--session-every" => {
                load.session_every = parse_number(&value(&mut args, "--session-every"))
            }
            "--abuse" => load.abuse = true,
            "--chaos" => load.chaos = true,
            "--suspend-one" => opts.suspend_one = true,
            "--resume-token" => opts.resume_token = Some(value(&mut args, "--resume-token")),
            "--json" => opts.json = true,
            "--out" => opts.out = Some(value(&mut args, "--out")),
            "--merge" => opts.merge = Some(value(&mut args, "--merge")),
            "--baseline" => opts.baseline = Some(value(&mut args, "--baseline")),
            "--threshold" => opts.threshold = parse_number(&value(&mut args, "--threshold")),
            "--help" | "-h" => usage(),
            other => {
                const FLAGS: [&str; 15] = [
                    "--addr",
                    "--clients",
                    "--threads",
                    "--mix",
                    "--session-every",
                    "--abuse",
                    "--chaos",
                    "--suspend-one",
                    "--resume-token",
                    "--json",
                    "--out",
                    "--merge",
                    "--baseline",
                    "--threshold",
                    "--help",
                ];
                match engine::suggest::suggest(other, FLAGS) {
                    Some(near) => {
                        eprintln!("bhload: unknown option: {other} (did you mean {near}?)")
                    }
                    None => eprintln!("bhload: unknown option: {other}"),
                }
                usage()
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("bhload: --addr is required");
        usage()
    };
    load.addr = addr.parse().unwrap_or_else(|e| {
        eprintln!("bhload: invalid --addr {addr:?}: {e}");
        std::process::exit(2)
    });
    opts.load = load;
    opts
}

fn parse_number<T: std::str::FromStr>(text: &str) -> T {
    text.parse().unwrap_or_else(|_| {
        eprintln!("bhload: not a valid number: {text:?}");
        std::process::exit(2)
    })
}

fn main() {
    let opts = parse_args();

    // The probe modes: one session suspended / resumed, digests printed as
    // JSON for the CI chaos job's cross-restart bit-identity assertion.
    if opts.suspend_one {
        match load::suspend_one(&opts.load.addr) {
            Ok((token, digest)) => {
                println!("{{\"token\": \"{token}\", \"digest\": \"{digest}\"}}");
                return;
            }
            Err(e) => {
                eprintln!("bhload: suspend probe failed: {e}");
                std::process::exit(1)
            }
        }
    }
    if let Some(token) = &opts.resume_token {
        match load::resume_token(&opts.load.addr, token) {
            Ok(digest) => {
                println!("{{\"digest\": \"{digest}\"}}");
                return;
            }
            Err(e) => {
                eprintln!("bhload: resume probe failed: {e}");
                std::process::exit(1)
            }
        }
    }

    let registry = scenarios::builtin();
    let report = match load::run(&opts.load, &registry) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bhload: load run failed: {e}");
            std::process::exit(1)
        }
    };

    eprintln!(
        "bhload: {} clients over {} worker threads, {:.2}s elapsed",
        opts.load.clients, opts.load.threads, report.elapsed_seconds
    );
    eprintln!(
        "bhload: {} measured requests, {} session flows, {} quota rejections, {} disconnects",
        report.measured_requests, report.sessions, report.quota_rejections, report.disconnects
    );
    if opts.load.chaos {
        eprintln!(
            "bhload: chaos: {} retried requests, {} mid-frame aborts, {} resume checks",
            report.retried, report.aborts, report.resume_checks
        );
    }
    for run in &report.record.runs {
        eprintln!(
            "bhload: {:<42} reqs {:>4}  p50 {:>8.2}ms  p99 {:>8.2}ms  {:>7.1} req/s",
            run.spec.key(),
            run.reps,
            run.latency_ms.median,
            run.latency_ms.p99,
            run.throughput_rps
        );
    }

    if opts.json {
        println!("{}", report.record.to_json());
    }
    if let Some(path) = &opts.out {
        if let Err(e) = std::fs::write(path, report.record.to_json() + "\n") {
            fail_schema(&format!("writing {path}: {e}"));
        }
        eprintln!("bhload: wrote serving record to {path}");
    }
    if let Some(path) = &opts.merge {
        let existing = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_schema(&format!("reading {path}: {e}")));
        let merged = load::merge_into_record(&existing, &report.record)
            .unwrap_or_else(|e| fail_schema(&format!("merging into {path}: {e}")));
        if let Err(e) = std::fs::write(path, merged.to_json() + "\n") {
            fail_schema(&format!("writing {path}: {e}"));
        }
        eprintln!("bhload: merged {} serving rows into {path}", report.record.runs.len());
    }

    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_schema(&format!("reading {path}: {e}")));
        let mut baseline = Record::from_json(&text)
            .unwrap_or_else(|e| fail_schema(&format!("baseline {path}: {e}")));
        // This gate owns the rows of the service it just produced (serving
        // or chaos); standalone rows and kernels of a merged record belong
        // to the benchsuite gate.
        let service = if opts.load.chaos {
            engine::bench::SERVICE_CHAOS
        } else {
            engine::bench::SERVICE_BHSERVE
        };
        baseline.runs.retain(|r| r.spec.service == service);
        baseline.kernels.clear();
        let diff = diff_against_baseline(&report.record, &baseline, opts.threshold / 100.0);
        if !diff.protocol_mismatches.is_empty() {
            for m in &diff.protocol_mismatches {
                eprintln!("bhload: PROTOCOL MISMATCH {m}");
            }
            fail_schema("the serving mix changed without regenerating the baseline");
        }
        if diff.compared == 0 {
            fail_schema(&format!("baseline {path} shares no serving sweep points with this run"));
        }
        for m in &diff.missing_allowed {
            eprintln!("bhload: missing (allowed, new axes): {m}");
        }
        for m in &diff.missing {
            eprintln!("bhload: MISSING {m} (present in baseline, absent from this run)");
        }
        for line in diff.describe_regressions() {
            eprintln!("bhload: REGRESSION {line}");
        }
        eprintln!(
            "bhload: baseline gate: {} point(s) compared, {} regression(s), {} missing",
            diff.compared,
            diff.regressions.len(),
            diff.missing.len()
        );
        if !diff.regressions.is_empty() || !diff.missing.is_empty() {
            std::process::exit(1);
        }
    }
}
