//! # bhserve — a multi-tenant simulation service over the engine
//!
//! The workspace's solvers are batch programs: one process, one
//! configuration, one run.  This crate turns them into a *service*: a
//! daemon that accepts simulation jobs over a socket, dispatches them
//! through the shared [`engine::BackendRegistry`], keeps simulations alive
//! across requests as *sessions*, and meters every tenant in the engine's
//! deterministic cost counters.  The companion `bhload` binary is the
//! stress harness: it drives thousands of concurrent clients against a
//! live server and reports latency percentiles and throughput in the same
//! [`engine::bench`] record format (and CI gate) as the solver benchmarks.
//!
//! The layers, bottom up:
//!
//! * [`frame`] — length-prefixed framing over a byte stream, with an
//!   explicitly enumerated failure taxonomy (fuzzed by the proptest
//!   suite).  No network dependencies: `std::net` and 4-byte headers.
//! * [`proto`] — the JSON request/response vocabulary: job decoding with
//!   defaults, stable machine-readable error codes (including relayed
//!   [`engine::ConfigError`] codes), and the bit-exact hex encoding of
//!   body state.
//! * [`quota`] — per-tenant ledgers denominated in deterministic counters
//!   (interactions, tree operations), post-paid admission, and the billing
//!   contract that makes coalescing fair.
//! * [`session`] — persistent simulations stepped across requests,
//!   guaranteed bit-for-bit identical to one standalone run (the
//!   [`engine::Backend::supports_sessions`] contract).
//! * [`batch`] — single-flight coalescing: identical small jobs from
//!   different clients share one engine run.
//! * [`server`] — the daemon: accept loop, thread-per-connection
//!   dispatch, the engine run gate, and the minimal blocking [`server::Client`].
//! * [`load`] — the `bhload` workload mixes, client scripts and the
//!   bench-record emission behind the serving perf gate.

pub mod batch;
pub mod frame;
pub mod load;
pub mod proto;
pub mod quota;
pub mod server;
pub mod session;

pub use frame::{read_frame, write_frame, MAX_FRAME};
pub use proto::{Job, Reject};
pub use quota::QuotaBook;
pub use server::{Client, Server, ServerOptions};
