//! Property-based tests for the PGAS emulator.

use pgas::{GlobalPtr, Machine, Runtime, SharedArena, SharedVec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn shared_vec_block_distribution_covers_every_index(ranks in 1usize..16, len in 1usize..200) {
        let v: SharedVec<u8> = SharedVec::new(ranks, len, 0);
        let mut counted = 0usize;
        for r in 0..ranks {
            let range = v.local_range(r);
            for i in range.clone() {
                prop_assert_eq!(v.owner_of(i), r);
            }
            counted += range.len();
        }
        prop_assert_eq!(counted, len);
        // Owners are monotone in the index.
        for i in 1..len {
            prop_assert!(v.owner_of(i) >= v.owner_of(i - 1));
        }
    }

    #[test]
    fn memput_memget_roundtrip(ranks in 1usize..6, data in prop::collection::vec(any::<u32>(), 1..100)) {
        let runtime = Runtime::new(Machine::test_cluster(ranks));
        let shared: SharedVec<u32> = SharedVec::new(ranks, data.len(), 0);
        let data_ref = &data;
        let report = runtime.run(|ctx| {
            if ctx.rank() == 0 {
                shared.put_block(ctx, 0, data_ref);
            }
            ctx.barrier();
            shared.get_block(ctx, 0..data_ref.len())
        });
        for rank in report.ranks {
            prop_assert_eq!(&rank.result, data_ref);
        }
    }

    #[test]
    fn ilist_gather_returns_requested_elements(ranks in 1usize..6, picks in prop::collection::vec(0usize..50, 1..40)) {
        let runtime = Runtime::new(Machine::test_cluster(ranks));
        let shared: SharedVec<u64> = SharedVec::from_fn(ranks, 50, |i| (i * 3) as u64);
        let picks_ref = &picks;
        let report = runtime.run(|ctx| shared.get_ilist(ctx, picks_ref));
        for rank in report.ranks {
            let expected: Vec<u64> = picks_ref.iter().map(|&i| (i * 3) as u64).collect();
            prop_assert_eq!(rank.result, expected);
        }
    }

    #[test]
    fn allreduce_vec_sum_equals_sequential_sum(ranks in 1usize..6, len in 1usize..20) {
        let runtime = Runtime::new(Machine::test_cluster(ranks));
        let report = runtime.run(|ctx| {
            let mine: Vec<f64> = (0..len).map(|i| (ctx.rank() * 100 + i) as f64).collect();
            ctx.allreduce_vec_sum(&mine)
        });
        let expected: Vec<f64> =
            (0..len).map(|i| (0..ranks).map(|r| (r * 100 + i) as f64).sum()).collect();
        for rank in report.ranks {
            prop_assert_eq!(&rank.result, &expected);
        }
    }

    #[test]
    fn exchange_is_a_permutation_of_payloads(ranks in 1usize..6, payload in 0u32..1000) {
        let runtime = Runtime::new(Machine::test_cluster(ranks));
        let report = runtime.run(|ctx| {
            // Every rank sends `payload + dest` to each destination.
            let outgoing: Vec<Vec<u32>> =
                (0..ctx.ranks()).map(|d| vec![payload + d as u32]).collect();
            ctx.exchange(outgoing)
        });
        for (rank_id, rank) in report.ranks.into_iter().enumerate() {
            // Every source sent exactly one value addressed to this rank.
            let got: Vec<u32> = rank.result.into_iter().flatten().collect();
            prop_assert_eq!(got, vec![payload + rank_id as u32; ranks]);
        }
    }

    #[test]
    fn arena_vlist_gather_preserves_order(ranks in 2usize..6, n in 1usize..30) {
        let runtime = Runtime::new(Machine::test_cluster(ranks));
        let arena: SharedArena<u64> = SharedArena::new(ranks);
        let report = runtime.run(|ctx| {
            let mine: Vec<GlobalPtr> =
                (0..n).map(|i| arena.alloc(ctx, (ctx.rank() * 1000 + i) as u64)).collect();
            let all: Vec<Vec<GlobalPtr>> = ctx.allgather(mine);
            ctx.barrier();
            // Gather everyone's elements interleaved and check ordering.
            let ptrs: Vec<GlobalPtr> = (0..n).flat_map(|i| all.iter().map(move |v| v[i])).collect();
            let values = arena.get_vlist(ctx, &ptrs);
            let expected: Vec<u64> =
                (0..n).flat_map(|i| (0..ctx.ranks()).map(move |r| (r * 1000 + i) as u64)).collect();
            values == expected
        });
        prop_assert!(report.ranks.into_iter().all(|r| r.result));
    }

    #[test]
    fn barrier_aligns_arbitrary_charges(ranks in 1usize..8, charges in prop::collection::vec(0.0f64..5.0, 1..8)) {
        let runtime = Runtime::new(Machine::test_cluster(ranks));
        let charges_ref = &charges;
        let report = runtime.run(|ctx| {
            let c = charges_ref[ctx.rank() % charges_ref.len()];
            ctx.charge_compute(c);
            ctx.barrier();
            ctx.now()
        });
        let clocks: Vec<f64> = report.ranks.iter().map(|r| r.result).collect();
        let max = clocks.iter().copied().fold(0.0, f64::max);
        for c in clocks {
            prop_assert!((c - max).abs() < 1e-12);
        }
    }
}
