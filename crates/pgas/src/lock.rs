//! Global locks (the emulated `upc_lock_t`).
//!
//! The SPLASH-2 tree-building phase protects every cell modification with a
//! lock; the paper's baseline inherits this and §5.4 shows how expensive
//! global locks become as the thread count grows (remote round trips plus
//! contention).  [`GlobalLock`] provides the same semantics: real mutual
//! exclusion across rank threads, plus a simulated acquisition cost that
//! depends on the lock's home rank.

use crate::ctx::Ctx;
use parking_lot::{Mutex, MutexGuard};

/// A UPC-style global lock with affinity to a home rank.
pub struct GlobalLock {
    home: usize,
    mutex: Mutex<()>,
}

/// RAII guard for a held [`GlobalLock`]; releasing is billed on drop through
/// the acquisition charge (acquire + release round trips are charged
/// up front, as the release is a one-way fire-and-forget message).
pub struct LockGuard<'a> {
    _guard: MutexGuard<'a, ()>,
}

impl GlobalLock {
    /// Creates a lock whose home (affinity) is `home`.
    pub fn new(home: usize) -> Self {
        GlobalLock { home, mutex: Mutex::new(()) }
    }

    /// The rank holding the lock's memory.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Acquires the lock (really blocking other rank threads) and charges the
    /// simulated acquire/release cost.
    pub fn lock<'a>(&'a self, ctx: &Ctx) -> LockGuard<'a> {
        let guard = self.mutex.lock();
        ctx.bill_lock(self.home);
        LockGuard { _guard: guard }
    }

    /// Attempts to acquire the lock without blocking.  Charges the
    /// acquisition cost only on success (a failed attempt charges one
    /// latency to the lock's home).
    pub fn try_lock<'a>(&'a self, ctx: &Ctx) -> Option<LockGuard<'a>> {
        match self.mutex.try_lock() {
            Some(guard) => {
                ctx.bill_lock(self.home);
                Some(LockGuard { _guard: guard })
            }
            None => {
                ctx.charge_issue_overhead(1);
                None
            }
        }
    }
}

/// A table of global locks, as SPLASH-2 allocates (one lock per cell hashed
/// into a fixed-size array).
pub struct LockTable {
    locks: Vec<GlobalLock>,
}

impl LockTable {
    /// Creates `count` locks, with homes distributed round-robin over
    /// `ranks` ranks (mirroring how `upc_all_lock_alloc` spreads locks).
    pub fn new(count: usize, ranks: usize) -> Self {
        assert!(count > 0 && ranks > 0);
        LockTable { locks: (0..count).map(|i| GlobalLock::new(i % ranks)).collect() }
    }

    /// Number of locks in the table.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// `true` if the table is empty (never the case for a valid table).
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// The lock that protects hash key `key`.
    pub fn lock_for(&self, key: usize) -> &GlobalLock {
        &self.locks[key % self.locks.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::runtime::Runtime;
    use crate::shared::SharedVec;

    #[test]
    fn provides_mutual_exclusion() {
        let ranks = 8;
        let rt = Runtime::new(Machine::test_cluster(ranks));
        let lock = GlobalLock::new(0);
        let counter: SharedVec<u64> = SharedVec::new(ranks, 1, 0);
        rt.run(|ctx| {
            for _ in 0..50 {
                let _guard = lock.lock(ctx);
                // Unprotected read-modify-write; correctness relies purely on
                // the lock.
                let v = counter.read_raw(0);
                counter.write_raw(0, v + 1);
            }
        });
        assert_eq!(counter.read_raw(0), 50 * ranks as u64);
    }

    #[test]
    fn billing_counts_acquisitions_and_costs_remote_more() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let lock_home0 = GlobalLock::new(0);
        let report = rt.run(|ctx| {
            let t0 = ctx.now();
            drop(lock_home0.lock(ctx));
            (ctx.now() - t0, ctx.stats_snapshot().lock_acquires)
        });
        let (cost_rank0, acq0) = report.ranks[0].result;
        let (cost_rank1, acq1) = report.ranks[1].result;
        assert_eq!(acq0, 1);
        assert_eq!(acq1, 1);
        assert!(cost_rank1 > cost_rank0, "remote lock must cost more than a local one");
    }

    #[test]
    fn try_lock_fails_when_held() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let lock = GlobalLock::new(0);
        rt.run(|ctx| {
            let g = lock.lock(ctx);
            assert!(lock.try_lock(ctx).is_none());
            drop(g);
            assert!(lock.try_lock(ctx).is_some());
        });
    }

    #[test]
    fn lock_table_hashes_to_fixed_set() {
        let table = LockTable::new(16, 4);
        assert_eq!(table.len(), 16);
        assert!(!table.is_empty());
        assert!(std::ptr::eq(table.lock_for(3), table.lock_for(19)));
        assert!(!std::ptr::eq(table.lock_for(3), table.lock_for(4)));
        assert_eq!(table.lock_for(5).home(), 1);
    }
}
