//! Machine description and communication cost model.
//!
//! The paper's testbed (§4.1) is an IBM Power5 cluster: 118 nodes, 16 cores
//! per node at 1.9 GHz, Berkeley UPC over GASNet's LAPI conduit, with an
//! optional `-pthreads` mode that maps several UPC threads onto one process.
//! This module replaces that hardware with an explicit LogGP-style cost
//! model:
//!
//! * a fine-grained access to shared data owned by another rank costs a
//!   **latency** term plus a **per-byte** term, where both depend on whether
//!   the two ranks share a node and on whether the runtime is in pthreads
//!   mode (shared memory within a node) or process mode (every access goes
//!   through the network stack, even on the same node — the §4.1 "36 000 s"
//!   observation);
//! * bulk transfers pay the latency once per message and the per-byte cost
//!   for the whole payload (this is what makes the paper's aggregation
//!   optimizations profitable);
//! * compute work is charged per body–cell interaction and per tree
//!   operation, with a dereference surcharge when the application walks
//!   shared pointers instead of casting them to local pointers (§5.3's 25 %
//!   single-thread improvement), and a multiplicative runtime overhead in
//!   pthreads mode (the Table 8 vs Table 9 gap).
//!
//! The default constants are calibrated so that the single-thread 2M-body
//! run lands in the same order of magnitude as the paper's Table 2 and the
//! relative shape of every experiment is preserved; EXPERIMENTS.md records
//! the calibration.

use serde::{Deserialize, Serialize};

/// Description of the emulated machine and of all cost-model constants.
///
/// All times are in (simulated) seconds, all rates in bytes per second.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    /// Number of physical nodes.
    pub nodes: usize,
    /// UPC threads (ranks) per node.
    pub threads_per_node: usize,
    /// `true` when the Berkeley UPC `-pthreads` mode is emulated: ranks on
    /// the same node share memory (cheap intra-node access) but every rank
    /// pays a runtime overhead on compute ([`Machine::cpu_overhead`]).
    pub pthreads: bool,

    /// Seconds of compute per body–cell (or body–body) interaction when the
    /// cell is reached through a local pointer.
    pub interaction_cost: f64,
    /// Additional seconds per interaction when the cell is reached by
    /// dereferencing a pointer-to-shared that happens to point locally
    /// (the overhead removed by the §5.2/§5.3 pointer casting).
    pub global_ptr_overhead: f64,
    /// Seconds per elementary tree operation (descending one level during
    /// insertion, examining one child during a merge, …).
    pub treeop_cost: f64,
    /// Seconds per multipole-acceptance test (the `l/d < θ` opening decision
    /// a force walk evaluates at every cell it visits).
    pub mac_cost: f64,
    /// Seconds per elementary local memory access performed by the PGAS
    /// layer on behalf of the application (reading a local body, …).
    pub local_access_cost: f64,

    /// One-sided get/put latency between ranks on *different* nodes.
    pub remote_latency: f64,
    /// Per-byte cost between ranks on different nodes (1 / bandwidth).
    pub remote_byte_cost: f64,
    /// One-sided get/put latency between distinct ranks on the *same* node
    /// when `pthreads` is true (shared-memory copy).
    pub intranode_latency: f64,
    /// Per-byte cost for same-node transfers in pthreads mode.
    pub intranode_byte_cost: f64,
    /// Latency for same-node transfers in *process* mode (no pthreads): the
    /// access still traverses the network stack, which §4.1 shows to be
    /// disastrous.
    pub loopback_latency: f64,
    /// Per-byte cost for same-node transfers in process mode.
    pub loopback_byte_cost: f64,

    /// Extra cost charged for acquiring a global lock, on top of the
    /// round-trip latency to the lock's owner.
    pub lock_overhead: f64,
    /// Cost of a barrier, charged as `barrier_latency * ceil(log2(ranks))`.
    pub barrier_latency: f64,
    /// Per-hop cost of tree-based collectives (reduce, broadcast).
    pub collective_latency: f64,
    /// Multiplicative factor applied to all compute when `pthreads` is true
    /// (GASNet polling / thread-safety overhead; Table 8 vs Table 9).
    pub cpu_overhead: f64,
    /// Fixed per-call software overhead of issuing any one-sided operation
    /// (argument marshalling, conduit entry), charged even for local targets.
    pub sw_overhead: f64,
}

impl Machine {
    /// Total number of ranks (UPC threads) in the machine.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.nodes * self.threads_per_node
    }

    /// The node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.threads_per_node
    }

    /// `true` if the two ranks live on the same node.
    #[inline]
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Effective compute multiplier (pthreads overhead).
    #[inline]
    pub fn compute_factor(&self) -> f64 {
        if self.pthreads {
            self.cpu_overhead
        } else {
            1.0
        }
    }

    /// Latency of a one-sided operation from `from` to `to`.
    ///
    /// Local (same-rank) operations only pay the software overhead.
    #[inline]
    pub fn latency(&self, from: usize, to: usize) -> f64 {
        if from == to {
            self.sw_overhead
        } else if self.same_node(from, to) {
            if self.pthreads {
                self.intranode_latency
            } else {
                self.loopback_latency
            }
        } else {
            self.remote_latency
        }
    }

    /// Per-byte cost of a transfer from `from` to `to`.
    #[inline]
    pub fn byte_cost(&self, from: usize, to: usize) -> f64 {
        if from == to {
            0.0
        } else if self.same_node(from, to) {
            if self.pthreads {
                self.intranode_byte_cost
            } else {
                self.loopback_byte_cost
            }
        } else {
            self.remote_byte_cost
        }
    }

    /// Cost of transferring `bytes` bytes in a single message.
    #[inline]
    pub fn transfer_cost(&self, from: usize, to: usize, bytes: usize) -> f64 {
        self.latency(from, to) + self.byte_cost(from, to) * bytes as f64
    }

    /// Cost of one barrier across all ranks.
    #[inline]
    pub fn barrier_cost(&self) -> f64 {
        self.barrier_latency * (self.ranks().max(2) as f64).log2().ceil()
    }

    /// Cost of a tree-based collective (reduce / broadcast) moving `bytes`
    /// per hop.
    #[inline]
    pub fn collective_cost(&self, bytes: usize) -> f64 {
        let hops = (self.ranks().max(2) as f64).log2().ceil();
        hops * (self.collective_latency + self.remote_byte_cost * bytes as f64)
    }

    /// A Power5/LAPI-like preset calibrated against the paper's Table 2 and
    /// Table 8 single-thread columns.
    ///
    /// * `nodes` — number of nodes,
    /// * `threads_per_node` — UPC threads per node,
    /// * `pthreads` — whether the Berkeley UPC `-pthreads` runtime is used.
    pub fn power5(nodes: usize, threads_per_node: usize, pthreads: bool) -> Machine {
        Machine {
            nodes,
            threads_per_node,
            pthreads,
            // ~160 s for 2M bodies x 2 steps at ~430 interactions/body/step
            // => ~9e-8 s per interaction (1.9 GHz in-order core, ~50 flops).
            interaction_cost: 9.0e-8,
            // Baseline single-thread force phase is ~190 s vs ~137-160 s with
            // local pointers: ~20-30 % surcharge per interaction.
            global_ptr_overhead: 2.5e-8,
            treeop_cost: 6.0e-8,
            // One multipole-acceptance test, billed per cell a force walk
            // visits: dragging the ~120-byte node record through the cache
            // plus the squared-distance/compare arithmetic — the same scale
            // as examining one child during a merge (`treeop_cost`), and
            // well under a full softened interaction (no sqrt, no
            // accumulate).
            mac_cost: 6.0e-8,
            local_access_cost: 4.0e-9,
            // LAPI one-sided latency on Power5 era hardware: ~10 us.
            remote_latency: 1.0e-5,
            remote_byte_cost: 1.0 / 1.0e9, // ~1 GB/s per link
            intranode_latency: 1.2e-6,
            intranode_byte_cost: 1.0 / 4.0e9,
            loopback_latency: 1.4e-5, // process mode: through the NIC stack
            loopback_byte_cost: 1.0 / 0.8e9,
            lock_overhead: 4.0e-6,
            barrier_latency: 8.0e-6,
            collective_latency: 1.0e-5,
            // Table 9 vs Table 8: pthreads runtime roughly doubles the
            // single-thread force time (309 s vs 158 s).
            cpu_overhead: 1.95,
            sw_overhead: 1.5e-7,
        }
    }

    /// A small, fast preset for unit tests and examples: same cost structure
    /// as [`Machine::power5`] but with one rank per node and process mode.
    pub fn test_cluster(ranks: usize) -> Machine {
        Machine::power5(ranks, 1, false)
    }

    /// A preset emulating the paper's default large-run configuration:
    /// one process per node (no pthreads), `nodes` nodes.
    pub fn process_per_node(nodes: usize) -> Machine {
        Machine::power5(nodes, 1, false)
    }

    /// A preset emulating `-pthreads` runs with `threads_per_node` UPC
    /// threads on each of `nodes` nodes.
    pub fn pthreads_per_node(nodes: usize, threads_per_node: usize) -> Machine {
        Machine::power5(nodes, threads_per_node, true)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::power5(1, 1, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_topology() {
        let m = Machine::power5(4, 16, true);
        assert_eq!(m.ranks(), 64);
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(15), 0);
        assert_eq!(m.node_of(16), 1);
        assert!(m.same_node(17, 31));
        assert!(!m.same_node(15, 16));
    }

    #[test]
    fn local_access_is_cheapest() {
        let m = Machine::power5(4, 4, true);
        assert!(m.latency(0, 0) < m.latency(0, 1));
        assert!(m.latency(0, 1) < m.latency(0, 5));
    }

    #[test]
    fn process_mode_intranode_is_expensive() {
        // §4.1: 16 processes on one node is disastrous compared with
        // 16 pthreads on one node.
        let pthread = Machine::power5(1, 16, true);
        let process = Machine::power5(1, 16, false);
        assert!(process.latency(0, 1) > 5.0 * pthread.latency(0, 1));
    }

    #[test]
    fn pthreads_mode_slows_compute() {
        let pthread = Machine::power5(4, 1, true);
        let process = Machine::power5(4, 1, false);
        assert!(pthread.compute_factor() > 1.5);
        assert_eq!(process.compute_factor(), 1.0);
    }

    #[test]
    fn transfer_cost_scales_with_bytes() {
        let m = Machine::power5(2, 1, false);
        let small = m.transfer_cost(0, 1, 64);
        let large = m.transfer_cost(0, 1, 64 * 1024);
        assert!(large > small);
        // One large message is much cheaper than many small ones.
        assert!(large < 1024.0 * small);
    }

    #[test]
    fn collective_and_barrier_grow_logarithmically() {
        let small = Machine::power5(4, 1, false);
        let large = Machine::power5(256, 1, false);
        assert!(large.barrier_cost() < 8.0 * small.barrier_cost());
        assert!(large.collective_cost(8) > small.collective_cost(8));
    }

    #[test]
    fn presets_are_consistent() {
        assert_eq!(Machine::process_per_node(8).ranks(), 8);
        assert_eq!(Machine::pthreads_per_node(8, 16).ranks(), 128);
        assert!(Machine::pthreads_per_node(8, 16).pthreads);
        assert!(!Machine::process_per_node(8).pthreads);
        assert_eq!(Machine::default().ranks(), 1);
    }
}
