//! Block-distributed shared arrays and shared scalars.
//!
//! [`SharedVec`] models a UPC shared array allocated with
//! `upc_global_alloc`: a fixed-length array whose elements are distributed
//! block-wise across ranks (rank 0 owns the first block, rank 1 the second,
//! and so on — the distribution the baseline code uses for `bodytab[]`).
//! [`SharedScalar`] models a UPC shared scalar, which the language pins to
//! thread 0 (§5.1 of the paper is entirely about the cost of that choice).

use crate::ctx::Ctx;
use crate::sync_cell::SyncSlot;
use std::ops::Range;

/// A block-distributed shared array of `T`.
pub struct SharedVec<T> {
    slots: Vec<SyncSlot<T>>,
    ranks: usize,
    block: usize,
}

impl<T: Copy + Send + Sync> SharedVec<T> {
    /// Allocates a shared array of `len` copies of `init`, block-distributed
    /// over `ranks` ranks.
    pub fn new(ranks: usize, len: usize, init: T) -> Self {
        assert!(ranks > 0, "SharedVec requires at least one rank");
        let block = len.div_ceil(ranks).max(1);
        SharedVec { slots: (0..len).map(|_| SyncSlot::new(init)).collect(), ranks, block }
    }

    /// Allocates a shared array initialized element-wise by `f`.
    pub fn from_fn(ranks: usize, len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        assert!(ranks > 0, "SharedVec requires at least one rank");
        let block = len.div_ceil(ranks).max(1);
        SharedVec { slots: (0..len).map(|i| SyncSlot::new(f(i))).collect(), ranks, block }
    }

    /// Allocates a shared array from an existing vector.
    pub fn from_vec(ranks: usize, data: Vec<T>) -> Self {
        let len = data.len();
        let mut it = data.into_iter();
        Self::from_fn(ranks, len, |_| it.next().expect("length mismatch"))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when the array is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Number of ranks the array is distributed over.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Rank with affinity to element `i` (UPC `upc_threadof(&a[i])`).
    #[inline]
    pub fn owner_of(&self, i: usize) -> usize {
        (i / self.block).min(self.ranks - 1)
    }

    /// The contiguous index range owned by `rank`.
    pub fn local_range(&self, rank: usize) -> Range<usize> {
        let start = (rank * self.block).min(self.slots.len());
        let end = ((rank + 1) * self.block).min(self.slots.len());
        start..end
    }

    /// Fine-grained read of element `i` (billed local or remote according to
    /// affinity).
    pub fn read(&self, ctx: &Ctx, i: usize) -> T {
        ctx.bill_get(self.owner_of(i), std::mem::size_of::<T>());
        self.slots[i].get()
    }

    /// Fine-grained write of element `i`.
    pub fn write(&self, ctx: &Ctx, i: usize, value: T) {
        ctx.bill_put(self.owner_of(i), std::mem::size_of::<T>());
        self.slots[i].set(value);
    }

    /// Read of an element the caller has verified to be local; models the
    /// "cast pointer-to-shared to local pointer" optimization (§5.2).
    ///
    /// # Panics
    /// Panics in debug builds if the element is not local to the caller.
    pub fn read_local(&self, ctx: &Ctx, i: usize) -> T {
        debug_assert_eq!(self.owner_of(i), ctx.rank(), "read_local on a remote element");
        ctx.charge_local_accesses(1);
        self.slots[i].get()
    }

    /// Local write counterpart of [`SharedVec::read_local`].
    pub fn write_local(&self, ctx: &Ctx, i: usize, value: T) {
        debug_assert_eq!(self.owner_of(i), ctx.rank(), "write_local on a remote element");
        ctx.charge_local_accesses(1);
        self.slots[i].set(value);
    }

    /// Read-modify-write of element `i` under the element lock.
    pub fn update<R>(&self, ctx: &Ctx, i: usize, f: impl FnOnce(&mut T) -> R) -> R {
        // A remote read-modify-write costs a get plus a put.
        let owner = self.owner_of(i);
        ctx.bill_get(owner, std::mem::size_of::<T>());
        ctx.bill_put(owner, std::mem::size_of::<T>());
        self.slots[i].update(f)
    }

    /// Bulk read of `range` (the emulated `upc_memget`): one message per
    /// owning rank touched by the range.
    pub fn get_block(&self, ctx: &Ctx, range: Range<usize>) -> Vec<T> {
        let elem = std::mem::size_of::<T>();
        let mut out = Vec::with_capacity(range.len());
        let mut i = range.start;
        while i < range.end {
            let owner = self.owner_of(i);
            let owner_end = self.local_range(owner).end.min(range.end);
            let count = owner_end - i;
            ctx.bill_bulk_get(owner, count * elem, count as u64);
            for slot in &self.slots[i..owner_end] {
                out.push(slot.get());
            }
            i = owner_end;
        }
        out
    }

    /// Bulk write starting at `start` (the emulated `upc_memput`).
    pub fn put_block(&self, ctx: &Ctx, start: usize, values: &[T]) {
        let elem = std::mem::size_of::<T>();
        let mut i = 0usize;
        while i < values.len() {
            let idx = start + i;
            let owner = self.owner_of(idx);
            let owner_end = (self.local_range(owner).end - start).min(values.len());
            let count = owner_end - i;
            ctx.bill_bulk_put(owner, count * elem, count as u64);
            for (j, value) in values.iter().enumerate().take(owner_end).skip(i) {
                self.slots[start + j].set(*value);
            }
            i = owner_end;
        }
    }

    /// Indexed gather (the emulated `upc_memget_ilist`): fetches the listed
    /// elements paying one message per distinct owning rank.
    pub fn get_ilist(&self, ctx: &Ctx, indices: &[usize]) -> Vec<T> {
        let elem = std::mem::size_of::<T>();
        // Bill one message per distinct owner.
        let mut per_owner: Vec<(usize, usize)> = Vec::new();
        for &i in indices {
            let owner = self.owner_of(i);
            match per_owner.iter_mut().find(|(o, _)| *o == owner) {
                Some((_, count)) => *count += 1,
                None => per_owner.push((owner, 1)),
            }
        }
        for &(owner, count) in &per_owner {
            ctx.bill_bulk_get(owner, count * elem, count as u64);
        }
        indices.iter().map(|&i| self.slots[i].get()).collect()
    }

    /// Unbilled read, for drivers, tests and result extraction only.
    pub fn read_raw(&self, i: usize) -> T {
        self.slots[i].get()
    }

    /// Unbilled write, for drivers and tests only.
    pub fn write_raw(&self, i: usize, value: T) {
        self.slots[i].set(value);
    }

    /// Unbilled snapshot of the whole array, for drivers and tests only.
    pub fn snapshot(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.slots[i].get()).collect()
    }
}

/// A UPC shared scalar: a single value with affinity to rank 0.
pub struct SharedScalar<T> {
    slot: SyncSlot<T>,
}

impl<T: Copy + Send + Sync> SharedScalar<T> {
    /// Creates a shared scalar holding `value` (stored on rank 0).
    pub fn new(value: T) -> Self {
        SharedScalar { slot: SyncSlot::new(value) }
    }

    /// Reads the scalar; every rank other than 0 pays a remote access
    /// (this is exactly the cost that §5.1 removes by replication).
    pub fn read(&self, ctx: &Ctx) -> T {
        ctx.bill_get(0, std::mem::size_of::<T>());
        self.slot.get()
    }

    /// Writes the scalar (remote for every rank other than 0).
    pub fn write(&self, ctx: &Ctx, value: T) {
        ctx.bill_put(0, std::mem::size_of::<T>());
        self.slot.set(value);
    }

    /// Unbilled read for drivers and tests.
    pub fn read_raw(&self) -> T {
        self.slot.get()
    }

    /// Unbilled write for drivers and tests.
    pub fn write_raw(&self, value: T) {
        self.slot.set(value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::runtime::Runtime;

    #[test]
    fn block_distribution_owners() {
        let v: SharedVec<u32> = SharedVec::new(4, 10, 0);
        // block = ceil(10/4) = 3
        assert_eq!(v.owner_of(0), 0);
        assert_eq!(v.owner_of(2), 0);
        assert_eq!(v.owner_of(3), 1);
        assert_eq!(v.owner_of(8), 2);
        assert_eq!(v.owner_of(9), 3);
        assert_eq!(v.local_range(0), 0..3);
        assert_eq!(v.local_range(3), 9..10);
    }

    #[test]
    fn local_range_of_small_array() {
        let v: SharedVec<u32> = SharedVec::new(8, 3, 0);
        // block = ceil(3/8) = 1: the first three ranks own one element each,
        // later ranks own empty ranges.
        assert_eq!(v.local_range(0), 0..1);
        assert_eq!(v.local_range(2), 2..3);
        assert!(v.local_range(5).is_empty());
    }

    #[test]
    fn read_write_roundtrip_and_billing() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let v: SharedVec<u64> = SharedVec::new(2, 8, 0);
        let report = rt.run(|ctx| {
            // Each rank writes its own block locally and reads the other's.
            for i in v.local_range(ctx.rank()) {
                v.write_local(ctx, i, (ctx.rank() * 100 + i) as u64);
            }
            ctx.barrier();
            let other = 1 - ctx.rank();
            let mut sum = 0;
            for i in v.local_range(other) {
                sum += v.read(ctx, i);
            }
            (sum, ctx.stats_snapshot().remote_gets)
        });
        // Rank 0 reads rank 1's block: values 104..=107 -> sum = 100*4 + 4+5+6+7
        assert_eq!(report.ranks[0].result.0, 422);
        assert_eq!(report.ranks[0].result.1, 4);
        assert_eq!(report.ranks[1].result.1, 4);
    }

    #[test]
    fn bulk_get_matches_fine_grained_but_fewer_messages() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let v: SharedVec<u32> = SharedVec::from_fn(2, 100, |i| i as u32);
        let report = rt.run(|ctx| {
            if ctx.rank() == 0 {
                let bulk = v.get_block(ctx, 50..100);
                let msgs_after_bulk = ctx.stats_snapshot().messages;
                let fine: Vec<u32> = (50..100).map(|i| v.read(ctx, i)).collect();
                let msgs_total = ctx.stats_snapshot().messages;
                assert_eq!(bulk, fine);
                assert_eq!(msgs_after_bulk, 1);
                assert_eq!(msgs_total - msgs_after_bulk, 50);
            }
            ctx.barrier();
        });
        drop(report);
    }

    #[test]
    fn put_block_spanning_owners() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let v: SharedVec<u32> = SharedVec::new(4, 16, 0);
        rt.run(|ctx| {
            if ctx.rank() == 0 {
                let vals: Vec<u32> = (0..16).map(|i| i * 2).collect();
                v.put_block(ctx, 0, &vals);
            }
            ctx.barrier();
            for i in 0..16 {
                assert_eq!(v.read(ctx, i), (i * 2) as u32);
            }
        });
    }

    #[test]
    fn ilist_gathers_in_request_order() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let v: SharedVec<u64> = SharedVec::from_fn(4, 40, |i| (i * i) as u64);
        let report = rt.run(|ctx| {
            let idx = vec![39, 0, 17, 22, 1];
            let got = v.get_ilist(ctx, &idx);
            (got, ctx.stats_snapshot().messages)
        });
        for r in &report.ranks {
            assert_eq!(r.result.0, vec![39 * 39, 0, 17 * 17, 22 * 22, 1]);
            // 39->rank3, 0/1->rank0, 17->rank1, 22->rank2: 4 distinct owners,
            // one of which is always the calling rank itself (no message).
            assert_eq!(r.result.1, 3);
        }
    }

    #[test]
    fn update_is_atomic_under_contention() {
        let rt = Runtime::new(Machine::test_cluster(8));
        let v: SharedVec<u64> = SharedVec::new(8, 1, 0);
        rt.run(|ctx| {
            for _ in 0..100 {
                v.update(ctx, 0, |x| *x += 1);
            }
            ctx.barrier();
            assert_eq!(v.read(ctx, 0), 800);
        });
    }

    #[test]
    fn shared_scalar_affinity_is_rank_zero() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let s = SharedScalar::new(1.25f64);
        let report = rt.run(|ctx| {
            let v = s.read(ctx);
            (v, ctx.stats_snapshot().remote_gets)
        });
        assert_eq!(report.ranks[0].result, (1.25, 0));
        assert_eq!(report.ranks[1].result, (1.25, 1));
    }

    #[test]
    fn snapshot_reflects_writes() {
        let v: SharedVec<u8> = SharedVec::new(2, 4, 7);
        v.write_raw(2, 9);
        assert_eq!(v.snapshot(), vec![7, 7, 9, 7]);
        assert_eq!(v.read_raw(2), 9);
    }
}
