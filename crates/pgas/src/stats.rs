//! Per-rank instrumentation counters.
//!
//! Beyond the simulated clock, the emulator counts every remote operation it
//! performs on behalf of a rank.  These counters back several observations
//! made in the paper's prose — the ~2 % body-migration rate of §5.2, the
//! "more than 93–95 % of aggregated requests have a single source thread"
//! statistic of §5.5 — and are generally useful when debugging why a variant
//! is slower than expected.

use serde::{Deserialize, Serialize};

/// Communication and work counters for one rank.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RankStats {
    /// Fine-grained reads of shared data owned by another rank.
    pub remote_gets: u64,
    /// Fine-grained writes to shared data owned by another rank.
    pub remote_puts: u64,
    /// Reads/writes of shared data owned by this rank.
    pub local_accesses: u64,
    /// Bulk messages issued (memget/memput/ilist/vlist/collective fragments).
    pub messages: u64,
    /// Bytes fetched from other ranks.
    pub bytes_in: u64,
    /// Bytes sent to other ranks.
    pub bytes_out: u64,
    /// Global lock acquisitions.
    pub lock_acquires: u64,
    /// Aggregated (vlist) gather requests issued.
    pub vlist_requests: u64,
    /// Aggregated gather requests whose elements all lived on one rank.
    pub vlist_single_source: u64,
    /// Body–cell / body–body interactions charged to this rank.
    pub interactions: u64,
    /// Elementary tree operations charged to this rank.
    pub tree_ops: u64,
    /// Multipole-acceptance tests (the `l/d < θ` opening decisions) charged
    /// to this rank.  This is the traversal-volume counter: a per-body walk
    /// pays one MAC per cell it visits, so the counter scales with
    /// `n · depth`; a group walk amortizes one traversal over a whole body
    /// group and cuts it by the mean group occupancy.
    pub macs: u64,
    /// Simulated seconds spent in compute charges.
    pub compute_seconds: f64,
    /// Simulated seconds spent in communication charges.
    pub comm_seconds: f64,
    /// Simulated seconds spent waiting at barriers / collectives.
    pub sync_seconds: f64,
}

impl RankStats {
    /// Merges another rank's counters into this one (used for whole-run
    /// aggregates).
    pub fn merge(&mut self, other: &RankStats) {
        self.remote_gets += other.remote_gets;
        self.remote_puts += other.remote_puts;
        self.local_accesses += other.local_accesses;
        self.messages += other.messages;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.lock_acquires += other.lock_acquires;
        self.vlist_requests += other.vlist_requests;
        self.vlist_single_source += other.vlist_single_source;
        self.interactions += other.interactions;
        self.tree_ops += other.tree_ops;
        self.macs += other.macs;
        self.compute_seconds += other.compute_seconds;
        self.comm_seconds += other.comm_seconds;
        self.sync_seconds += other.sync_seconds;
    }

    /// Counter-wise difference `self - earlier`, for measuring what one
    /// region of code cost: snapshot before ([`crate::Ctx::stats_snapshot`]),
    /// snapshot after, subtract.  Saturates at zero so a reset between
    /// snapshots cannot underflow.
    pub fn delta(&self, earlier: &RankStats) -> RankStats {
        RankStats {
            remote_gets: self.remote_gets.saturating_sub(earlier.remote_gets),
            remote_puts: self.remote_puts.saturating_sub(earlier.remote_puts),
            local_accesses: self.local_accesses.saturating_sub(earlier.local_accesses),
            messages: self.messages.saturating_sub(earlier.messages),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
            lock_acquires: self.lock_acquires.saturating_sub(earlier.lock_acquires),
            vlist_requests: self.vlist_requests.saturating_sub(earlier.vlist_requests),
            vlist_single_source: self
                .vlist_single_source
                .saturating_sub(earlier.vlist_single_source),
            interactions: self.interactions.saturating_sub(earlier.interactions),
            tree_ops: self.tree_ops.saturating_sub(earlier.tree_ops),
            macs: self.macs.saturating_sub(earlier.macs),
            compute_seconds: (self.compute_seconds - earlier.compute_seconds).max(0.0),
            comm_seconds: (self.comm_seconds - earlier.comm_seconds).max(0.0),
            sync_seconds: (self.sync_seconds - earlier.sync_seconds).max(0.0),
        }
    }

    /// Fraction of aggregated gather requests served by a single source rank
    /// (the §5.5 statistic).  Returns `None` when no requests were issued.
    pub fn vlist_single_source_fraction(&self) -> Option<f64> {
        if self.vlist_requests == 0 {
            None
        } else {
            Some(self.vlist_single_source as f64 / self.vlist_requests as f64)
        }
    }

    /// Total remote fine-grained operations.
    pub fn remote_ops(&self) -> u64 {
        self.remote_gets + self.remote_puts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a =
            RankStats { remote_gets: 1, bytes_in: 10, compute_seconds: 1.5, ..Default::default() };
        let b = RankStats {
            remote_gets: 2,
            bytes_in: 5,
            compute_seconds: 0.5,
            lock_acquires: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.remote_gets, 3);
        assert_eq!(a.bytes_in, 15);
        assert_eq!(a.lock_acquires, 3);
        assert!((a.compute_seconds - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_source_fraction() {
        let mut s = RankStats::default();
        assert_eq!(s.vlist_single_source_fraction(), None);
        s.vlist_requests = 10;
        s.vlist_single_source = 9;
        assert_eq!(s.vlist_single_source_fraction(), Some(0.9));
    }

    #[test]
    fn remote_ops_sums_gets_and_puts() {
        let s = RankStats { remote_gets: 4, remote_puts: 6, ..Default::default() };
        assert_eq!(s.remote_ops(), 10);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let before = RankStats { interactions: 10, bytes_in: 5, ..Default::default() };
        let after =
            RankStats { interactions: 25, bytes_in: 3, remote_gets: 7, ..Default::default() };
        let d = after.delta(&before);
        assert_eq!(d.interactions, 15);
        assert_eq!(d.remote_gets, 7);
        assert_eq!(d.bytes_in, 0, "delta must saturate, not underflow");
    }
}
