//! Global pointers (UPC pointer-to-shared).
//!
//! A UPC pointer-to-shared carries the owning thread and the address within
//! that thread's shared segment.  The emulated equivalent is a small `Copy`
//! struct addressing an element of a [`crate::SharedArena`]: the rank that
//! allocated the element plus its index in that rank's region.
//!
//! Exactly as in UPC, dereferencing a `GlobalPtr` is more expensive than a
//! local pointer even when it points to local memory (the cost model charges
//! [`crate::Machine::global_ptr_overhead`]), which is what makes the paper's
//! pointer-casting optimizations observable here.

use serde::{Deserialize, Serialize};

/// A pointer into the partitioned global address space.
///
/// `GlobalPtr::NULL` plays the role of a null pointer-to-shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalPtr {
    /// Rank whose shared segment holds the element.
    pub thread: u32,
    /// Index of the element within that rank's region (`u32::MAX` = null).
    pub index: u32,
}

impl GlobalPtr {
    /// The null pointer-to-shared.
    pub const NULL: GlobalPtr = GlobalPtr { thread: u32::MAX, index: u32::MAX };

    /// Creates a pointer to element `index` of `thread`'s region.
    #[inline]
    pub fn new(thread: usize, index: usize) -> Self {
        GlobalPtr { thread: thread as u32, index: index as u32 }
    }

    /// `true` for the null pointer.
    #[inline]
    pub fn is_null(self) -> bool {
        self == GlobalPtr::NULL
    }

    /// The owning rank (UPC `upc_threadof`). Panics on null.
    #[inline]
    pub fn threadof(self) -> usize {
        debug_assert!(!self.is_null(), "threadof(NULL)");
        self.thread as usize
    }

    /// The index within the owner's region. Panics on null in debug builds.
    #[inline]
    pub fn indexof(self) -> usize {
        debug_assert!(!self.is_null(), "indexof(NULL)");
        self.index as usize
    }

    /// `true` when this pointer refers to memory with affinity to `rank`
    /// (i.e. casting it to a local pointer is legal, per §5.2 of the paper).
    #[inline]
    pub fn is_local_to(self, rank: usize) -> bool {
        !self.is_null() && self.thread as usize == rank
    }
}

impl Default for GlobalPtr {
    fn default() -> Self {
        GlobalPtr::NULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_behaviour() {
        assert!(GlobalPtr::NULL.is_null());
        assert!(GlobalPtr::default().is_null());
        assert!(!GlobalPtr::new(0, 0).is_null());
    }

    #[test]
    fn accessors() {
        let p = GlobalPtr::new(3, 17);
        assert_eq!(p.threadof(), 3);
        assert_eq!(p.indexof(), 17);
        assert!(p.is_local_to(3));
        assert!(!p.is_local_to(2));
        assert!(!GlobalPtr::NULL.is_local_to(0));
    }

    #[test]
    fn equality_and_hash() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(GlobalPtr::new(1, 2));
        set.insert(GlobalPtr::new(1, 2));
        set.insert(GlobalPtr::new(2, 1));
        assert_eq!(set.len(), 2);
    }
}
