//! # pgas — a UPC-style Partitioned Global Address Space emulator
//!
//! The paper this workspace reproduces ("Optimizing the Barnes-Hut Algorithm
//! in UPC", SC 2011) evaluates its optimizations on an IBM Power5 cluster
//! using the Berkeley UPC compiler and the GASNet/LAPI runtime.  None of that
//! is available here, so this crate provides the closest synthetic
//! equivalent: an **emulated PGAS runtime** whose API mirrors the UPC
//! features the paper's code relies on, layered over plain Rust threads and a
//! **deterministic communication cost model**.
//!
//! The key idea: algorithms built on this crate run *for real* (they compute
//! real forces over real shared data), but every access to shared data is
//! classified by affinity (local / same node / remote node) and charged to a
//! per-rank **simulated clock**.  Phase times reported by the `bh` crate are
//! simulated seconds, which makes the scaling experiments independent of how
//! many physical cores execute the emulation — exactly what is needed to
//! reproduce the *shape* of the paper's tables on a single host.
//!
//! ## Feature map (UPC → this crate)
//!
//! | UPC / Berkeley UPC                      | here |
//! |-----------------------------------------|------|
//! | `THREADS`, `MYTHREAD`                   | [`Ctx::ranks`], [`Ctx::rank`] |
//! | shared arrays (block-distributed)       | [`SharedVec`] |
//! | `upc_alloc` (per-thread shared heap)    | [`SharedArena`] |
//! | pointer-to-shared                       | [`GlobalPtr`] |
//! | `upc_memget` / `upc_memput`             | [`SharedVec::get_block`] / [`SharedVec::put_block`] |
//! | `upc_memget_ilist`                      | [`SharedVec::get_ilist`] |
//! | `bupc_memget_vlist_async` + `waitsync`  | [`SharedArena::get_vlist_async`], [`Handle`] |
//! | `upc_lock_t`                            | [`GlobalLock`] |
//! | `upc_barrier`                           | [`Ctx::barrier`] |
//! | collectives (reduce, broadcast, …)      | [`Ctx::allreduce_sum`], [`Ctx::allreduce_vec_sum`], [`Ctx::broadcast`], [`Ctx::exchange`] |
//! | MPI-style two-sided messages (for the §9 comparator) | [`Ctx::send`], [`Ctx::recv`], [`Ctx::send_recv`] ([`msg`]) |
//! | MuPC-style software scalar caching (§8) | [`swcache::CachedScalar`] |
//!
//! ## Safety model
//!
//! Like UPC's relaxed shared accesses, [`SharedVec`] and [`SharedArena`] give
//! every rank read/write access to every element with no per-element locking.
//! The emulator forbids torn reads at the type level by only exposing
//! whole-value copies (`T: Copy`), but it is the application's responsibility
//! to avoid logically conflicting writes — which the Barnes-Hut phases do by
//! construction (owner-computes, phase-wise read-only structures), exactly as
//! argued in §7 of the paper.  Conflicting concurrent writes are a bug in the
//! application, not undefined behaviour visible to safe callers: all racy
//! access is funnelled through lock-protected primitives internally (see
//! `sync_cell`).

pub mod arena;
pub mod collectives;
pub mod ctx;
pub mod gptr;
pub mod lock;
pub mod machine;
pub mod msg;
pub mod phase;
pub mod runtime;
pub mod shared;
pub mod stats;
pub mod swcache;
mod sync_cell;

pub use arena::SharedArena;
pub use ctx::{Ctx, Handle};
pub use gptr::GlobalPtr;
pub use lock::GlobalLock;
pub use machine::Machine;
pub use phase::PhaseTimer;
pub use runtime::{RankReport, RunReport, Runtime};
pub use shared::SharedVec;
pub use stats::RankStats;
