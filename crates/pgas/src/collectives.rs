//! Collective operations.
//!
//! The paper's scalable tree-building algorithm (§6) relies on collectives
//! that UPC provides either natively or through extensions: a
//! reduce-and-broadcast of per-cell costs ("vector reduction"), an
//! all-to-all exchange of bodies, and ordinary scalar broadcasts.  This
//! module implements them over the runtime's collective board, with
//! tree-based (log₂ P) cost charging.
//!
//! All collectives must be called by **every rank** and in the **same
//! program order** on every rank (exactly like UPC collectives); the
//! sequence number kept by each [`Ctx`] pairs up the matching calls.

use crate::ctx::Ctx;

impl<'w> Ctx<'w> {
    /// Deposits `value` on the collective board and returns the vector of
    /// every rank's deposit, in rank order.  This is the building block for
    /// the other collectives (an allgather).
    pub fn allgather<T>(&self, value: T) -> Vec<T>
    where
        T: Clone + Send + 'static,
    {
        let seq = self.next_collective_seq();
        let world = self.world();
        let ranks = self.ranks();

        // Deposit.
        {
            let mut board = world.board.lock();
            let entry = board.entry(seq).or_insert_with(|| {
                Box::new(vec![None::<T>; ranks]) as Box<dyn std::any::Any + Send>
            });
            let slots = entry.downcast_mut::<Vec<Option<T>>>().expect("collective type mismatch");
            slots[self.rank()] = Some(value);
        }
        world.host_barrier();

        // Collect.
        let gathered: Vec<T> = {
            let board = world.board.lock();
            let entry = board.get(&seq).expect("collective board entry missing");
            let slots = entry.downcast_ref::<Vec<Option<T>>>().expect("collective type mismatch");
            slots.iter().map(|s| s.clone().expect("rank missed collective")).collect()
        };
        world.host_barrier();

        // Cleanup (rank 0 removes the entry once everyone has read it).
        if self.rank() == 0 {
            world.board.lock().remove(&seq);
        }

        // Simulated cost: align clocks (it is a synchronizing operation) and
        // charge a tree-based gather of the payload.
        let max = world.align_clocks(self.rank(), self.now());
        let waited = self.advance_to(max);
        let bytes = std::mem::size_of::<T>();
        let cost = self.machine().collective_cost(bytes * ranks);
        self.advance(cost);
        self.with_stats(|s| {
            s.sync_seconds += waited;
            s.comm_seconds += cost;
            s.messages += 1;
        });
        gathered
    }

    /// Broadcast from `root`: `value` is taken from the root rank and
    /// returned on every rank.
    pub fn broadcast<T>(&self, root: usize, value: T) -> T
    where
        T: Clone + Send + 'static,
    {
        let all = self.allgather(value);
        all[root].clone()
    }

    /// Sum-allreduce of a scalar.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        self.allgather(value).into_iter().sum()
    }

    /// Max-allreduce of a scalar.
    pub fn allreduce_max(&self, value: f64) -> f64 {
        self.allgather(value).into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Min-allreduce of a scalar.
    pub fn allreduce_min(&self, value: f64) -> f64 {
        self.allgather(value).into_iter().fold(f64::INFINITY, f64::min)
    }

    /// Element-wise sum-allreduce of a vector (the paper's "vector
    /// reduction", §6.1).  All ranks must pass vectors of the same length.
    ///
    /// The cost is that of **one** collective over the whole vector — this is
    /// precisely the optimization that Figure 11 contrasts with Figure 10
    /// (one collective per *cell* instead of one per *level*).
    pub fn allreduce_vec_sum(&self, values: &[f64]) -> Vec<f64> {
        let all = self.allgather(values.to_vec());
        let len = values.len();
        let mut out = vec![0.0; len];
        for contribution in &all {
            assert_eq!(contribution.len(), len, "allreduce_vec_sum length mismatch across ranks");
            for (o, v) in out.iter_mut().zip(contribution) {
                *o += v;
            }
        }
        out
    }

    /// All-to-all personalized exchange: `outgoing[d]` is the data this rank
    /// sends to rank `d`; the return value is, for each source rank `s`, the
    /// data that rank `s` sent to this rank.
    ///
    /// Cost model: every rank pays latency per non-empty destination plus the
    /// byte cost of everything it sends and receives (the §6 body exchange).
    pub fn exchange<T>(&self, outgoing: Vec<Vec<T>>) -> Vec<Vec<T>>
    where
        T: Clone + Send + 'static,
    {
        assert_eq!(
            outgoing.len(),
            self.ranks(),
            "exchange requires one bucket per destination rank"
        );
        let elem_bytes = std::mem::size_of::<T>();

        // Charge the send side before the gather.
        let mut send_cost = 0.0;
        let mut sent_bytes = 0u64;
        let mut sent_msgs = 0u64;
        for (dest, bucket) in outgoing.iter().enumerate() {
            if dest == self.rank() || bucket.is_empty() {
                continue;
            }
            let bytes = bucket.len() * elem_bytes;
            send_cost += self.machine().transfer_cost(self.rank(), dest, bytes);
            sent_bytes += bytes as u64;
            sent_msgs += 1;
        }
        self.advance(send_cost);
        self.with_stats(|s| {
            s.comm_seconds += send_cost;
            s.bytes_out += sent_bytes;
            s.messages += sent_msgs;
        });

        let all: Vec<Vec<Vec<T>>> = self.allgather(outgoing);

        // Collect the column addressed to this rank and charge the receive
        // side (bytes only; the latency was paid by the senders).
        let mut received = Vec::with_capacity(self.ranks());
        let mut recv_bytes = 0u64;
        for (source, buckets) in all.into_iter().enumerate() {
            let bucket = buckets.into_iter().nth(self.rank()).expect("exchange bucket missing");
            if source != self.rank() {
                recv_bytes += (bucket.len() * elem_bytes) as u64;
            }
            received.push(bucket);
        }
        let recv_cost = recv_bytes as f64 * self.machine().remote_byte_cost;
        self.advance(recv_cost);
        self.with_stats(|s| {
            s.comm_seconds += recv_cost;
            s.bytes_in += recv_bytes;
        });
        received
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;
    use crate::runtime::Runtime;

    #[test]
    fn allgather_collects_in_rank_order() {
        let rt = Runtime::new(Machine::test_cluster(5));
        let report = rt.run(|ctx| ctx.allgather(ctx.rank() * 10));
        for r in &report.ranks {
            assert_eq!(r.result, vec![0, 10, 20, 30, 40]);
        }
    }

    #[test]
    fn broadcast_takes_root_value() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let mine = if ctx.rank() == 2 { 99 } else { ctx.rank() as i32 };
            ctx.broadcast(2, mine)
        });
        assert!(report.ranks.iter().all(|r| r.result == 99));
    }

    #[test]
    fn allreduce_sum_and_extrema() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let sum = ctx.allreduce_sum(ctx.rank() as f64);
            let max = ctx.allreduce_max(ctx.rank() as f64);
            let min = ctx.allreduce_min(ctx.rank() as f64);
            (sum, max, min)
        });
        for r in &report.ranks {
            assert_eq!(r.result, (6.0, 3.0, 0.0));
        }
    }

    #[test]
    fn vector_reduction_sums_elementwise() {
        let rt = Runtime::new(Machine::test_cluster(3));
        let report = rt.run(|ctx| {
            let mine = vec![ctx.rank() as f64, 1.0, 2.0 * ctx.rank() as f64];
            ctx.allreduce_vec_sum(&mine)
        });
        for r in &report.ranks {
            assert_eq!(r.result, vec![3.0, 3.0, 6.0]);
        }
    }

    #[test]
    fn vector_reduction_is_cheaper_than_many_scalars() {
        // One 1024-element vector reduction must cost far less than 1024
        // scalar reductions — the Figure 10 vs Figure 11 effect.
        let rt = Runtime::new(Machine::test_cluster(8));
        let vec_time = rt
            .run(|ctx| {
                let v = vec![1.0; 1024];
                ctx.allreduce_vec_sum(&v);
                ctx.now()
            })
            .makespan();
        let rt = Runtime::new(Machine::test_cluster(8));
        let scalar_time = rt
            .run(|ctx| {
                for _ in 0..1024 {
                    ctx.allreduce_sum(1.0);
                }
                ctx.now()
            })
            .makespan();
        assert!(scalar_time > 20.0 * vec_time, "scalar {scalar_time} vs vector {vec_time}");
    }

    #[test]
    fn exchange_routes_data_to_destinations() {
        let rt = Runtime::new(Machine::test_cluster(3));
        let report = rt.run(|ctx| {
            // Rank r sends the value 100*r + d to destination d.
            let outgoing: Vec<Vec<u32>> =
                (0..ctx.ranks()).map(|d| vec![(100 * ctx.rank() + d) as u32]).collect();
            ctx.exchange(outgoing)
        });
        for (rank, r) in report.ranks.iter().enumerate() {
            let got: Vec<u32> = r.result.iter().flatten().copied().collect();
            let expected: Vec<u32> = (0..3).map(|s| (100 * s + rank) as u32).collect();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn exchange_bills_bytes() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let mut outgoing: Vec<Vec<u64>> = vec![Vec::new(); ctx.ranks()];
            outgoing[1 - ctx.rank()] = vec![0u64; 1000];
            ctx.exchange(outgoing);
            ctx.stats_snapshot()
        });
        for r in &report.ranks {
            assert_eq!(r.result.bytes_out, 8000);
            assert_eq!(r.result.bytes_in, 8000);
        }
    }
}
