//! The SPMD runtime: spawns one OS thread per emulated UPC thread (rank) and
//! provides the shared "world" state (barrier, collective board, clock
//! exchange slots) that the per-rank [`crate::Ctx`] handles talk to.
//!
//! The number of OS threads equals the number of *emulated* ranks, not the
//! number of physical cores: because all performance results are expressed in
//! simulated time, oversubscribing the host CPU does not change any reported
//! number, it only changes how long the emulation takes to run for real.

use crate::ctx::Ctx;
use crate::machine::Machine;
use crate::msg::MsgBoard;
use crate::stats::RankStats;
use crate::sync_cell::SyncSlot;
use parking_lot::Mutex;
use std::any::Any;
use std::collections::HashMap;
use std::sync::Barrier;

/// Shared state visible to every rank during a run.
pub(crate) struct World {
    pub(crate) machine: Machine,
    pub(crate) ranks: usize,
    barrier: Barrier,
    clock_slots: Vec<SyncSlot<f64>>,
    /// Board used to move values between ranks during collectives.  Keyed by
    /// the collective sequence number (all ranks execute collectives in the
    /// same order, so the sequence number identifies the operation).
    pub(crate) board: Mutex<HashMap<u64, Box<dyn Any + Send>>>,
    /// Mailboxes for the two-sided message-passing extension
    /// ([`crate::msg`]).
    pub(crate) msgs: MsgBoard,
}

impl World {
    fn new(machine: Machine) -> Self {
        let ranks = machine.ranks();
        World {
            machine,
            ranks,
            barrier: Barrier::new(ranks),
            clock_slots: (0..ranks).map(|_| SyncSlot::new(0.0)).collect(),
            board: Mutex::new(HashMap::new()),
            msgs: MsgBoard::new(),
        }
    }

    /// Real (host) barrier across all rank threads.  Carries no simulated
    /// cost by itself; simulated synchronization cost is charged by the
    /// caller.
    pub(crate) fn host_barrier(&self) {
        self.barrier.wait();
    }

    /// Simulated barrier: aligns every rank's clock to the maximum clock and
    /// returns that maximum.  The caller charges the barrier latency.
    pub(crate) fn align_clocks(&self, rank: usize, clock: f64) -> f64 {
        self.clock_slots[rank].set(clock);
        self.host_barrier();
        let max = (0..self.ranks).map(|r| self.clock_slots[r].get()).fold(f64::MIN, f64::max);
        self.host_barrier();
        max
    }
}

/// Per-rank summary returned by [`Runtime::run`].
#[derive(Debug, Clone)]
pub struct RankReport<R> {
    /// The rank this report describes.
    pub rank: usize,
    /// Final simulated clock of the rank, in seconds.
    pub clock: f64,
    /// Communication/work counters accumulated by the rank.
    pub stats: RankStats,
    /// Whatever the SPMD closure returned on this rank.
    pub result: R,
}

/// Result of a whole SPMD run.
#[derive(Debug, Clone)]
pub struct RunReport<R> {
    /// One report per rank, indexed by rank.
    pub ranks: Vec<RankReport<R>>,
}

impl<R> RunReport<R> {
    /// The simulated makespan: the largest final clock across ranks.
    pub fn makespan(&self) -> f64 {
        self.ranks.iter().map(|r| r.clock).fold(0.0, f64::max)
    }

    /// Aggregated statistics across all ranks.
    pub fn total_stats(&self) -> RankStats {
        let mut total = RankStats::default();
        for r in &self.ranks {
            total.merge(&r.stats);
        }
        total
    }
}

/// The emulated UPC runtime.
///
/// ```
/// use pgas::{Machine, Runtime, SharedVec};
///
/// let machine = Machine::test_cluster(4);
/// let runtime = Runtime::new(machine);
/// let data = SharedVec::from_fn(runtime.ranks(), 16, |i| i as u64);
/// let report = runtime.run(|ctx| {
///     // Every rank sums the whole shared array (remote reads are billed).
///     let mut sum = 0;
///     for i in 0..data.len() {
///         sum += data.read(ctx, i);
///     }
///     ctx.barrier();
///     sum
/// });
/// assert!(report.ranks.iter().all(|r| r.result == 120));
/// assert!(report.makespan() > 0.0);
/// ```
pub struct Runtime {
    machine: Machine,
    stack_size: usize,
}

impl Runtime {
    /// Creates a runtime for the given machine description.
    pub fn new(machine: Machine) -> Self {
        Runtime { machine, stack_size: 2 * 1024 * 1024 }
    }

    /// Number of ranks (UPC threads) this runtime will spawn.
    pub fn ranks(&self) -> usize {
        self.machine.ranks()
    }

    /// The machine description used by this runtime.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Overrides the per-rank stack size (bytes).  The default of 2 MiB is
    /// enough for every algorithm in the workspace.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        self.stack_size = bytes;
        self
    }

    /// Runs `f` in SPMD style: one thread per rank, each receiving its own
    /// [`Ctx`].  Returns per-rank clocks, statistics and results.
    ///
    /// # Panics
    ///
    /// Panics if any rank panics (the panic is propagated).
    pub fn run<F, R>(&self, f: F) -> RunReport<R>
    where
        F: Fn(&Ctx) -> R + Sync,
        R: Send,
    {
        let world = World::new(self.machine.clone());
        let ranks = world.ranks;
        let f = &f;
        let world_ref = &world;
        let mut reports: Vec<Option<RankReport<R>>> = (0..ranks).map(|_| None).collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(ranks);
            for rank in 0..ranks {
                let builder = std::thread::Builder::new()
                    .name(format!("pgas-rank-{rank}"))
                    .stack_size(self.stack_size);
                let handle = builder
                    .spawn_scoped(scope, move || {
                        let ctx = Ctx::new(rank, world_ref);
                        let result = f(&ctx);
                        let (clock, stats) = ctx.into_summary();
                        RankReport { rank, clock, stats, result }
                    })
                    .expect("failed to spawn rank thread");
                handles.push(handle);
            }
            for (rank, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(report) => reports[rank] = Some(report),
                    Err(e) => std::panic::resume_unwind(e),
                }
            }
        });

        RunReport { ranks: reports.into_iter().map(|r| r.expect("missing rank report")).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_rank_once() {
        let rt = Runtime::new(Machine::test_cluster(8));
        let report = rt.run(|ctx| ctx.rank());
        assert_eq!(report.ranks.len(), 8);
        for (i, r) in report.ranks.iter().enumerate() {
            assert_eq!(r.rank, i);
            assert_eq!(r.result, i);
        }
    }

    #[test]
    fn makespan_is_max_clock() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            // Each rank charges a different amount of compute.
            ctx.charge_compute(ctx.rank() as f64 * 0.5);
        });
        assert!((report.makespan() - 1.5).abs() < 1e-9);
        assert!((report.ranks[2].clock - 1.0).abs() < 1e-9);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            ctx.charge_compute(ctx.rank() as f64);
            ctx.barrier();
            ctx.now()
        });
        let clocks: Vec<f64> = report.ranks.iter().map(|r| r.result).collect();
        for c in &clocks {
            assert!((c - clocks[0]).abs() < 1e-12, "clocks must be aligned after a barrier");
        }
        assert!(clocks[0] >= 3.0);
    }

    #[test]
    fn total_stats_aggregates() {
        let rt = Runtime::new(Machine::test_cluster(3));
        let report = rt.run(|ctx| {
            ctx.charge_interactions(10);
        });
        assert_eq!(report.total_stats().interactions, 30);
    }

    #[test]
    fn single_rank_machine_works() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| {
            ctx.barrier();
            ctx.allreduce_sum(2.5)
        });
        assert_eq!(report.ranks.len(), 1);
        assert!((report.ranks[0].result - 2.5).abs() < 1e-12);
    }
}
