//! Internal storage slot used by the shared-memory containers.
//!
//! Every element of a [`crate::SharedVec`] or [`crate::SharedArena`] lives in
//! a `SyncSlot<T>`: a value behind a `parking_lot::RwLock`.  This keeps the
//! emulator entirely free of `unsafe` code — concurrent readers proceed in
//! parallel, and a logically racy write (an application bug under the UPC
//! relaxed model) degrades into a well-defined last-writer-wins outcome
//! instead of undefined behaviour.
//!
//! The lock is an implementation detail: it is *not* part of the simulated
//! cost model (real lock overhead is a few tens of nanoseconds and does not
//! perturb simulated time at all).

use parking_lot::RwLock;

/// A single shared storage slot.
#[derive(Debug, Default)]
pub(crate) struct SyncSlot<T>(RwLock<T>);

impl<T: Copy> SyncSlot<T> {
    /// Creates a slot holding `value`.
    pub(crate) fn new(value: T) -> Self {
        SyncSlot(RwLock::new(value))
    }

    /// Copies the value out.
    #[inline]
    pub(crate) fn get(&self) -> T {
        *self.0.read()
    }

    /// Overwrites the value.
    #[inline]
    pub(crate) fn set(&self, value: T) {
        *self.0.write() = value;
    }

    /// Applies `f` to the value under the write lock and returns its result.
    ///
    /// This is the primitive behind read-modify-write operations such as the
    /// commutative centre-of-mass merges of §5.4 of the paper.
    #[inline]
    pub(crate) fn update<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.0.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn get_set_roundtrip() {
        let s = SyncSlot::new(41u64);
        assert_eq!(s.get(), 41);
        s.set(42);
        assert_eq!(s.get(), 42);
    }

    #[test]
    fn update_returns_value() {
        let s = SyncSlot::new(10i32);
        let prev = s.update(|v| {
            let p = *v;
            *v += 5;
            p
        });
        assert_eq!(prev, 10);
        assert_eq!(s.get(), 15);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = Arc::new(SyncSlot::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.update(|v| *v += 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(s.get(), 8000);
    }
}
