//! Two-sided (send/receive) message passing over the same machine model.
//!
//! The paper closes by promising a direct comparison between the optimized
//! UPC Barnes-Hut code and "a similar code expressed in MPI" (§9), and cites
//! Dinan et al.'s hybrid MPI+UPC variant as related work (§8).  To make that
//! comparison possible inside this workspace, this module adds explicit,
//! two-sided message passing to the emulated runtime: the same SPMD ranks,
//! the same [`crate::Machine`] cost model and the same simulated clocks, but
//! communication is initiated by matching `send`/`recv` pairs rather than by
//! dereferencing global pointers.
//!
//! The semantics follow blocking MPI point-to-point communication with eager
//! delivery:
//!
//! * [`Ctx::send`] charges the sender the full transfer cost (latency plus
//!   bytes) and deposits the message; it never blocks on the receiver.
//! * [`Ctx::recv`] blocks (for real, on the host) until a matching message is
//!   available, then advances the receiver's simulated clock to at least the
//!   message's arrival time — so a late sender genuinely delays the receiver
//!   in simulated time, exactly as `MPI_Recv` would.
//! * Messages between the same (source, destination, tag) triple are
//!   delivered in the order they were sent (MPI's non-overtaking rule).
//!
//! Collectives are shared with the one-sided world ([`Ctx::allgather`],
//! [`Ctx::exchange`], …): MPI codes use both, and charging them identically
//! keeps the UPC-vs-MPI comparison about the *point-to-point and caching
//! structure* of the algorithms, not about collective implementations.

use crate::ctx::Ctx;
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// A message in flight: its payload, its simulated arrival time at the
/// destination, and its size for billing.
struct Envelope {
    payload: Box<dyn Any + Send>,
    arrival: f64,
    bytes: usize,
}

/// Mailbox shared by all ranks: one FIFO queue per
/// (destination, source, tag) triple.
pub(crate) struct MsgBoard {
    queues: Mutex<HashMap<(usize, usize, u64), VecDeque<Envelope>>>,
    available: Condvar,
}

impl MsgBoard {
    pub(crate) fn new() -> Self {
        MsgBoard { queues: Mutex::new(HashMap::new()), available: Condvar::new() }
    }

    fn deposit(&self, dest: usize, source: usize, tag: u64, envelope: Envelope) {
        let mut queues = self.queues.lock();
        queues.entry((dest, source, tag)).or_default().push_back(envelope);
        self.available.notify_all();
    }

    fn collect(&self, dest: usize, source: usize, tag: u64) -> Envelope {
        let mut queues = self.queues.lock();
        loop {
            if let Some(queue) = queues.get_mut(&(dest, source, tag)) {
                if let Some(envelope) = queue.pop_front() {
                    return envelope;
                }
            }
            self.available.wait(&mut queues);
        }
    }

    fn try_collect(&self, dest: usize, source: usize, tag: u64) -> Option<Envelope> {
        let mut queues = self.queues.lock();
        queues.get_mut(&(dest, source, tag)).and_then(|q| q.pop_front())
    }
}

impl<'w> Ctx<'w> {
    /// Sends `data` to rank `dest` under `tag` (blocking, eager).
    ///
    /// The sender is charged one message worth of transfer cost
    /// (latency + bytes); the call returns as soon as the message is
    /// deposited, like an eager `MPI_Send`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is not a valid rank.
    pub fn send<T>(&self, dest: usize, tag: u64, data: Vec<T>)
    where
        T: Send + 'static,
    {
        assert!(dest < self.ranks(), "send destination {dest} out of range");
        let bytes = std::mem::size_of::<T>() * data.len();
        let m = self.machine();
        let cost = m.transfer_cost(self.rank(), dest, bytes);
        self.advance(cost);
        self.with_stats(|s| {
            s.comm_seconds += cost;
            s.messages += 1;
            if dest != self.rank() {
                s.bytes_out += bytes as u64;
            }
        });
        let envelope = Envelope { payload: Box::new(data), arrival: self.now(), bytes };
        self.world().msgs.deposit(dest, self.rank(), tag, envelope);
    }

    /// Receives the next message sent by `source` under `tag` (blocking).
    ///
    /// Blocks until a matching message exists, then advances the simulated
    /// clock to at least the message's arrival time; the waiting time is
    /// recorded as synchronization time.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a valid rank, or if the matching message was
    /// sent with a different element type.
    pub fn recv<T>(&self, source: usize, tag: u64) -> Vec<T>
    where
        T: Send + 'static,
    {
        assert!(source < self.ranks(), "recv source {source} out of range");
        let envelope = self.world().msgs.collect(self.rank(), source, tag);
        self.finish_recv(source, envelope)
    }

    /// Non-blocking probe-and-receive: returns the next matching message if
    /// one has already been deposited, `None` otherwise.
    ///
    /// A small polling overhead is charged either way.
    pub fn try_recv<T>(&self, source: usize, tag: u64) -> Option<Vec<T>>
    where
        T: Send + 'static,
    {
        assert!(source < self.ranks(), "recv source {source} out of range");
        self.charge_issue_overhead(1);
        let envelope = self.world().msgs.try_collect(self.rank(), source, tag)?;
        Some(self.finish_recv(source, envelope))
    }

    /// Sends `outgoing` to `dest` and receives one message from `source`
    /// under the same tag — the `MPI_Sendrecv` pattern used by shift-style
    /// exchanges.  Deadlock-free because [`Ctx::send`] never blocks on the
    /// receiver.
    pub fn send_recv<T>(&self, dest: usize, source: usize, tag: u64, outgoing: Vec<T>) -> Vec<T>
    where
        T: Send + 'static,
    {
        self.send(dest, tag, outgoing);
        self.recv(source, tag)
    }

    /// Books the receive side of a collected envelope: waits (in simulated
    /// time) for the arrival, charges the receive overhead and the inbound
    /// bytes.
    fn finish_recv<T>(&self, source: usize, envelope: Envelope) -> Vec<T>
    where
        T: Send + 'static,
    {
        let waited = self.advance_to(envelope.arrival);
        self.advance(self.machine().sw_overhead);
        self.with_stats(|s| {
            s.sync_seconds += waited;
            s.comm_seconds += self.machine().sw_overhead;
            if source != self.rank() {
                s.bytes_in += envelope.bytes as u64;
            }
        });
        *envelope.payload.downcast::<Vec<T>>().unwrap_or_else(|_| {
            panic!("message from rank {source} received with the wrong element type")
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::Machine;
    use crate::runtime::Runtime;

    #[test]
    fn ping_pong_roundtrip() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1u32, 2, 3]);
                ctx.recv::<u32>(1, 8)
            } else {
                let got = ctx.recv::<u32>(0, 7);
                ctx.send(0, 8, got.iter().map(|x| x * 10).collect());
                got
            }
        });
        assert_eq!(report.ranks[0].result, vec![10, 20, 30]);
        assert_eq!(report.ranks[1].result, vec![1, 2, 3]);
    }

    #[test]
    fn recv_waits_for_late_sender_in_simulated_time() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            if ctx.rank() == 0 {
                // Busy for 2 simulated seconds before sending.
                ctx.charge_compute(2.0);
                ctx.send(1, 0, vec![42u8]);
                ctx.now()
            } else {
                let _ = ctx.recv::<u8>(0, 0);
                ctx.now()
            }
        });
        // The receiver cannot finish the receive before the sender sent.
        assert!(report.ranks[1].result >= 2.0);
        assert!(report.ranks[1].stats.sync_seconds > 1.0);
    }

    #[test]
    fn messages_are_not_overtaken() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            if ctx.rank() == 0 {
                for i in 0..5u32 {
                    ctx.send(1, 3, vec![i]);
                }
                Vec::new()
            } else {
                (0..5).map(|_| ctx.recv::<u32>(0, 3)[0]).collect::<Vec<_>>()
            }
        });
        assert_eq!(report.ranks[1].result, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn tags_separate_message_streams() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![10u32]);
                ctx.send(1, 2, vec![20u32]);
                (0, 0)
            } else {
                // Receive in the opposite order of the sends.
                let b = ctx.recv::<u32>(0, 2)[0];
                let a = ctx.recv::<u32>(0, 1)[0];
                (a, b)
            }
        });
        assert_eq!(report.ranks[1].result, (10, 20));
    }

    #[test]
    fn try_recv_polls_without_blocking() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            if ctx.rank() == 0 {
                // Nothing has been sent to rank 0: the probe must come back
                // empty.  (No barrier needed: nobody ever sends to rank 0.)
                let empty = ctx.try_recv::<u8>(1, 0).is_none();
                ctx.send(1, 0, vec![5u8]);
                empty
            } else {
                // Blocking receive, then the probe of the now-empty queue.
                let got = ctx.recv::<u8>(0, 0);
                got == vec![5] && ctx.try_recv::<u8>(0, 0).is_none()
            }
        });
        assert!(report.ranks.iter().all(|r| r.result));
    }

    #[test]
    fn send_recv_shift_pattern() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let dest = (ctx.rank() + 1) % ctx.ranks();
            let source = (ctx.rank() + ctx.ranks() - 1) % ctx.ranks();
            ctx.send_recv(dest, source, 9, vec![ctx.rank() as u64])
        });
        for (rank, r) in report.ranks.iter().enumerate() {
            let expected = (rank + 3) % 4;
            assert_eq!(r.result, vec![expected as u64]);
        }
    }

    #[test]
    fn transfer_costs_and_bytes_are_billed() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0u64; 1000]);
            } else {
                let _ = ctx.recv::<u64>(0, 0);
            }
            ctx.stats_snapshot()
        });
        assert_eq!(report.ranks[0].stats.bytes_out, 8000);
        assert_eq!(report.ranks[1].stats.bytes_in, 8000);
        assert!(report.ranks[0].clock > 0.0);
        // The sender paid at least latency + bytes/bandwidth.
        let m = Machine::test_cluster(2);
        assert!(report.ranks[0].clock >= m.transfer_cost(0, 1, 8000) * 0.99);
    }

    #[test]
    fn self_messages_are_cheap_and_legal() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| {
            ctx.send(0, 0, vec![1u8, 2]);
            let got = ctx.recv::<u8>(0, 0);
            (got, ctx.stats_snapshot().bytes_out)
        });
        assert_eq!(report.ranks[0].result.0, vec![1, 2]);
        // Self-sends move no bytes over the network.
        assert_eq!(report.ranks[0].result.1, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        let rt = Runtime::new(Machine::test_cluster(1));
        rt.run(|ctx| ctx.send(5, 0, vec![0u8]));
    }

    #[test]
    fn large_messages_amortize_latency() {
        // One 64 KiB message must be much cheaper than 1024 64-byte messages,
        // mirroring Machine::transfer_cost_scales_with_bytes at the msg level.
        let one_big = Runtime::new(Machine::test_cluster(2)).run(|ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0u8; 64 * 1024]);
            } else {
                let _ = ctx.recv::<u8>(0, 0);
            }
            ctx.now()
        });
        let many_small = Runtime::new(Machine::test_cluster(2)).run(|ctx| {
            if ctx.rank() == 0 {
                for _ in 0..1024 {
                    ctx.send(1, 0, vec![0u8; 64]);
                }
            } else {
                for _ in 0..1024 {
                    let _ = ctx.recv::<u8>(0, 0);
                }
            }
            ctx.now()
        });
        assert!(many_small.makespan() > 10.0 * one_big.makespan());
    }
}
