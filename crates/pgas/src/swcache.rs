//! Transparent software caching of shared scalars (MuPC-style).
//!
//! The paper's related-work section (§8) discusses runtime-maintained
//! software caches for UPC: the MuPC runtime caches shared scalar variables
//! and writes them back at every synchronization point, and a similar scheme
//! was prototyped for Berkeley UPC.  The paper is sceptical that such fully
//! transparent caching helps complex codes, because the manual optimizations
//! of §5 exploit application knowledge (which data is read-only in which
//! phase) that a blind cache does not have.
//!
//! This module provides the emulated equivalent so the claim can be tested:
//! a [`CachedScalar`] remembers the value it last read from a
//! [`SharedScalar`](crate::shared::SharedScalar) and serves repeated reads
//! locally until the next barrier ([`Ctx::epoch`] changes), at which point
//! the cache is invalidated — exactly the MuPC discipline of "write back at
//! each synchronization point, to avoid coherence issues".  The `bh` crate
//! exposes a configuration switch that routes the baseline solver's scalar
//! reads through these caches, and the bench suite compares the result with
//! both the un-cached baseline and the manual §5.1 replication.

use crate::ctx::Ctx;
use crate::shared::SharedScalar;
use std::cell::Cell;

/// A per-rank software cache in front of one shared scalar.
///
/// The cache holds at most one value and is only valid within the
/// synchronization epoch in which it was filled.
#[derive(Debug, Default)]
pub struct CachedScalar<T: Copy> {
    slot: Cell<Option<(u64, T)>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<T: Copy> CachedScalar<T> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CachedScalar { slot: Cell::new(None), hits: Cell::new(0), misses: Cell::new(0) }
    }

    /// Reads the scalar through the cache.
    ///
    /// The first read in each synchronization epoch pays the normal shared
    /// read (remote for every rank but the scalar's owner); repeated reads in
    /// the same epoch are served from the local copy at local-access cost.
    pub fn read(&self, ctx: &Ctx, scalar: &SharedScalar<T>) -> T
    where
        T: Send + Sync,
    {
        let epoch = ctx.epoch();
        if let Some((cached_epoch, value)) = self.slot.get() {
            if cached_epoch == epoch {
                ctx.charge_local_accesses(1);
                self.hits.set(self.hits.get() + 1);
                return value;
            }
        }
        let value = scalar.read(ctx);
        self.slot.set(Some((epoch, value)));
        self.misses.set(self.misses.get() + 1);
        value
    }

    /// Explicitly invalidates the cache (used by writers; a write to a
    /// software-cached scalar must not leave stale copies behind).
    pub fn invalidate(&self) {
        self.slot.set(None);
    }

    /// Number of reads served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Number of reads that went to the shared scalar.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::runtime::Runtime;
    use crate::shared::SharedScalar;

    #[test]
    fn repeated_reads_hit_the_cache() {
        let scalar = SharedScalar::new(3.25_f64);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let cache = CachedScalar::new();
            for _ in 0..100 {
                assert_eq!(cache.read(ctx, &scalar), 3.25);
            }
            (cache.hits(), cache.misses(), ctx.stats_snapshot().remote_gets)
        });
        // Rank 0 owns the scalar (reads are local either way); rank 1 must
        // fetch it remotely exactly once.
        let (hits, misses, remote) = report.ranks[1].result;
        assert_eq!(misses, 1);
        assert_eq!(hits, 99);
        assert_eq!(remote, 1);
    }

    #[test]
    fn barrier_invalidates_the_cache() {
        let scalar = SharedScalar::new(1.0_f64);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let cache = CachedScalar::new();
            let _ = cache.read(ctx, &scalar);
            let _ = cache.read(ctx, &scalar);
            ctx.barrier();
            let _ = cache.read(ctx, &scalar);
            cache.misses()
        });
        assert!(report.ranks.iter().all(|r| r.result == 2), "one miss per epoch");
    }

    #[test]
    fn invalidation_after_write_observes_new_value() {
        let scalar = SharedScalar::new(10_u64);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let cache = CachedScalar::new();
            let before = cache.read(ctx, &scalar);
            ctx.barrier();
            if ctx.rank() == 0 {
                scalar.write(ctx, 20);
            }
            ctx.barrier();
            // The barrier moved the epoch forward, so the next cached read
            // re-fetches and sees the new value.
            let after = cache.read(ctx, &scalar);
            (before, after)
        });
        for r in &report.ranks {
            assert_eq!(r.result, (10, 20));
        }
    }

    #[test]
    fn caching_is_cheaper_than_uncached_reads() {
        let scalar = SharedScalar::new(0.5_f64);
        let reads = 10_000;
        let uncached = Runtime::new(Machine::test_cluster(2)).run(|ctx| {
            for _ in 0..reads {
                let _ = scalar.read(ctx);
            }
            ctx.now()
        });
        let scalar2 = SharedScalar::new(0.5_f64);
        let cached = Runtime::new(Machine::test_cluster(2)).run(|ctx| {
            let cache = CachedScalar::new();
            for _ in 0..reads {
                let _ = cache.read(ctx, &scalar2);
            }
            ctx.now()
        });
        assert!(
            uncached.makespan() > 50.0 * cached.makespan(),
            "caching must remove almost all remote scalar traffic ({} vs {})",
            uncached.makespan(),
            cached.makespan()
        );
    }

    #[test]
    fn explicit_invalidate_forces_a_refetch() {
        let scalar = SharedScalar::new(7_u32);
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| {
            let cache = CachedScalar::new();
            let _ = cache.read(ctx, &scalar);
            cache.invalidate();
            let _ = cache.read(ctx, &scalar);
            cache.misses()
        });
        assert_eq!(report.ranks[0].result, 2);
    }
}
