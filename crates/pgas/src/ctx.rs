//! The per-rank execution context: simulated clock, cost charging, barriers
//! and non-blocking communication handles.
//!
//! A [`Ctx`] is the emulated equivalent of "being a UPC thread": it knows its
//! rank (`MYTHREAD`), the total number of ranks (`THREADS`), and it owns the
//! simulated clock and statistics for that rank.  All PGAS containers take a
//! `&Ctx` on every operation so that the operation can be billed to the right
//! rank.

use crate::machine::Machine;
use crate::runtime::World;
use crate::stats::RankStats;
use std::cell::{Cell, RefCell};

/// Handle returned by non-blocking gathers
/// (the emulated `bupc_memget_vlist_async`).
///
/// The data is materialized eagerly (the source cells are read-only during
/// the phase that issues gathers, exactly as §5.3/§5.5 of the paper argue),
/// but it only becomes *available to the simulated program* once the
/// simulated clock passes `complete_at` — which is what
/// [`Ctx::wait_sync`] / [`Ctx::try_sync`] enforce.  Compute charged between
/// issue and completion therefore genuinely hides the transfer latency.
#[derive(Debug)]
pub struct Handle<T> {
    pub(crate) data: Vec<T>,
    pub(crate) complete_at: f64,
}

impl<T> Handle<T> {
    /// Simulated completion time of the transfer.
    pub fn complete_at(&self) -> f64 {
        self.complete_at
    }

    /// Number of elements carried by this handle.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the handle carries no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Per-rank execution context (the emulated UPC thread).
pub struct Ctx<'w> {
    rank: usize,
    world: &'w World,
    clock: Cell<f64>,
    stats: RefCell<RankStats>,
    coll_seq: Cell<u64>,
    epoch: Cell<u64>,
}

impl<'w> Ctx<'w> {
    pub(crate) fn new(rank: usize, world: &'w World) -> Self {
        Ctx {
            rank,
            world,
            clock: Cell::new(0.0),
            stats: RefCell::new(RankStats::default()),
            coll_seq: Cell::new(0),
            epoch: Cell::new(0),
        }
    }

    pub(crate) fn world(&self) -> &'w World {
        self.world
    }

    /// Consumes the context, returning the final clock and statistics.
    pub(crate) fn into_summary(self) -> (f64, RankStats) {
        (self.clock.get(), self.stats.into_inner())
    }

    /// This rank's id (UPC `MYTHREAD`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks (UPC `THREADS`).
    #[inline]
    pub fn ranks(&self) -> usize {
        self.world.ranks
    }

    /// The machine description (cost model) in effect.
    #[inline]
    pub fn machine(&self) -> &Machine {
        &self.world.machine
    }

    /// Current simulated time of this rank, in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.clock.get()
    }

    /// Runs a closure with mutable access to this rank's statistics.
    pub(crate) fn with_stats<R>(&self, f: impl FnOnce(&mut RankStats) -> R) -> R {
        f(&mut self.stats.borrow_mut())
    }

    /// A snapshot of this rank's statistics so far.
    pub fn stats_snapshot(&self) -> RankStats {
        self.stats.borrow().clone()
    }

    /// Advances the clock unconditionally (used internally).
    #[inline]
    pub(crate) fn advance(&self, dt: f64) {
        debug_assert!(dt >= 0.0, "cannot advance the clock backwards");
        self.clock.set(self.clock.get() + dt);
    }

    /// Sets the clock to at least `t` (used when waiting on async handles and
    /// at barriers).
    #[inline]
    pub(crate) fn advance_to(&self, t: f64) -> f64 {
        let waited = (t - self.clock.get()).max(0.0);
        if waited > 0.0 {
            self.clock.set(t);
        }
        waited
    }

    // ----------------------------------------------------------------------
    // Compute charging
    // ----------------------------------------------------------------------

    /// Charges `seconds` of raw compute time (scaled by the pthreads runtime
    /// overhead factor of the machine).
    pub fn charge_compute(&self, seconds: f64) {
        let t = seconds * self.machine().compute_factor();
        self.advance(t);
        self.with_stats(|s| s.compute_seconds += t);
    }

    /// Charges `n` body–cell interactions computed through *local* pointers.
    pub fn charge_interactions(&self, n: u64) {
        let t = n as f64 * self.machine().interaction_cost * self.machine().compute_factor();
        self.advance(t);
        self.with_stats(|s| {
            s.interactions += n;
            s.compute_seconds += t;
        });
    }

    /// Charges `n` body–cell interactions computed through pointers-to-shared
    /// (the un-cast baseline of §4; each interaction pays the dereference
    /// surcharge).
    pub fn charge_interactions_shared_ptr(&self, n: u64) {
        let m = self.machine();
        let t = n as f64 * (m.interaction_cost + m.global_ptr_overhead) * m.compute_factor();
        self.advance(t);
        self.with_stats(|s| {
            s.interactions += n;
            s.compute_seconds += t;
        });
    }

    /// Charges `n` multipole-acceptance tests (the `l/d < θ` opening
    /// decisions a force walk evaluates, one per visited cell).
    pub fn charge_macs(&self, n: u64) {
        let t = n as f64 * self.machine().mac_cost * self.machine().compute_factor();
        self.advance(t);
        self.with_stats(|s| {
            s.macs += n;
            s.compute_seconds += t;
        });
    }

    /// Charges `n` elementary tree operations (insertion descents, merge
    /// steps, subspace splits, …).
    pub fn charge_tree_ops(&self, n: u64) {
        let t = n as f64 * self.machine().treeop_cost * self.machine().compute_factor();
        self.advance(t);
        self.with_stats(|s| {
            s.tree_ops += n;
            s.compute_seconds += t;
        });
    }

    /// Charges `n` plain local memory accesses.
    pub fn charge_local_accesses(&self, n: u64) {
        let t = n as f64 * self.machine().local_access_cost * self.machine().compute_factor();
        self.advance(t);
        self.with_stats(|s| {
            s.local_accesses += n;
            s.compute_seconds += t;
        });
    }

    // ----------------------------------------------------------------------
    // Communication charging (used by the shared containers)
    // ----------------------------------------------------------------------

    /// Charges a fine-grained read of `bytes` bytes owned by `owner`.
    pub(crate) fn bill_get(&self, owner: usize, bytes: usize) {
        let m = self.machine();
        let cost = m.transfer_cost(self.rank, owner, bytes);
        self.advance(cost);
        self.with_stats(|s| {
            s.comm_seconds += cost;
            if owner == self.rank {
                s.local_accesses += 1;
            } else {
                s.remote_gets += 1;
                s.messages += 1;
                s.bytes_in += bytes as u64;
            }
        });
    }

    /// Charges a fine-grained write of `bytes` bytes owned by `owner`.
    pub(crate) fn bill_put(&self, owner: usize, bytes: usize) {
        let m = self.machine();
        let cost = m.transfer_cost(self.rank, owner, bytes);
        self.advance(cost);
        self.with_stats(|s| {
            s.comm_seconds += cost;
            if owner == self.rank {
                s.local_accesses += 1;
            } else {
                s.remote_puts += 1;
                s.messages += 1;
                s.bytes_out += bytes as u64;
            }
        });
    }

    /// Charges a bulk get of `bytes` bytes from `owner` in a single message
    /// and returns its cost.
    pub(crate) fn bill_bulk_get(&self, owner: usize, bytes: usize, elements: u64) -> f64 {
        let m = self.machine();
        let cost = m.transfer_cost(self.rank, owner, bytes);
        self.advance(cost);
        self.with_stats(|s| {
            s.comm_seconds += cost;
            if owner == self.rank {
                s.local_accesses += elements;
            } else {
                s.messages += 1;
                s.remote_gets += elements;
                s.bytes_in += bytes as u64;
            }
        });
        cost
    }

    /// Charges a bulk put of `bytes` bytes to `owner` in a single message.
    pub(crate) fn bill_bulk_put(&self, owner: usize, bytes: usize, elements: u64) {
        let m = self.machine();
        let cost = m.transfer_cost(self.rank, owner, bytes);
        self.advance(cost);
        self.with_stats(|s| {
            s.comm_seconds += cost;
            if owner == self.rank {
                s.local_accesses += elements;
            } else {
                s.messages += 1;
                s.remote_puts += elements;
                s.bytes_out += bytes as u64;
            }
        });
    }

    /// Computes (without charging) the pure network cost of a gather of
    /// `bytes_per_source` from the given sources, assuming the messages
    /// overlap on the network.  Used by the non-blocking gather.
    pub(crate) fn gather_cost(&self, sources: &[(usize, usize)]) -> f64 {
        let m = self.machine();
        sources
            .iter()
            .map(|&(owner, bytes)| m.transfer_cost(self.rank, owner, bytes))
            .fold(0.0, f64::max)
    }

    /// Records the bookkeeping for an aggregated (vlist) request.
    pub(crate) fn record_vlist(&self, num_sources: usize, remote_elements: u64, bytes: u64) {
        self.with_stats(|s| {
            s.vlist_requests += 1;
            if num_sources <= 1 {
                s.vlist_single_source += 1;
            }
            s.messages += num_sources as u64;
            s.remote_gets += remote_elements;
            s.bytes_in += bytes;
        });
    }

    /// Charges the CPU-side cost of issuing `messages` one-sided operations.
    pub(crate) fn charge_issue_overhead(&self, messages: usize) {
        let t = messages as f64 * self.machine().sw_overhead;
        self.advance(t);
        self.with_stats(|s| s.comm_seconds += t);
    }

    /// Charges a global lock acquisition on a lock owned by `owner`.
    pub(crate) fn bill_lock(&self, owner: usize) {
        let m = self.machine();
        // Acquire + release round trips to the lock's home plus the runtime
        // overhead of the lock implementation.
        let cost = 2.0 * m.latency(self.rank, owner) + m.lock_overhead;
        self.advance(cost);
        self.with_stats(|s| {
            s.comm_seconds += cost;
            s.lock_acquires += 1;
            if owner != self.rank {
                s.messages += 2;
            }
        });
    }

    // ----------------------------------------------------------------------
    // External-container billing surface
    //
    // Shared containers built *outside* this crate (layouts the generic
    // arena cannot express, e.g. an SoA node store) need to bill their
    // traffic with exactly the semantics of the in-crate containers.  These
    // methods expose the arena's billing decisions — and only those — as a
    // public API; the raw `bill_*` primitives stay crate-private.
    // ----------------------------------------------------------------------

    /// Bills one shared-object read of `bytes` bytes owned by `owner`,
    /// exactly as a [`crate::SharedArena::read`] of an element that size:
    /// a local target pays the pointer-to-shared dereference surcharge plus
    /// one local access, a remote target pays a fine-grained get.
    pub fn charge_shared_read(&self, owner: usize, bytes: usize) {
        if owner == self.rank {
            self.advance(self.machine().global_ptr_overhead);
            self.charge_local_accesses(1);
        } else {
            self.bill_get(owner, bytes);
        }
    }

    /// Write counterpart of [`Ctx::charge_shared_read`] (the billing of a
    /// [`crate::SharedArena::write`]).
    pub fn charge_shared_write(&self, owner: usize, bytes: usize) {
        if owner == self.rank {
            self.advance(self.machine().global_ptr_overhead);
            self.charge_local_accesses(1);
        } else {
            self.bill_put(owner, bytes);
        }
    }

    /// Bills an atomic read-modify-write of a `bytes`-byte shared object
    /// owned by `owner` — a round trip (get + put), local or not, exactly
    /// as [`crate::SharedArena::update`].
    pub fn charge_rmw(&self, owner: usize, bytes: usize) {
        self.bill_get(owner, bytes);
        self.bill_put(owner, bytes);
    }

    /// Issues a non-blocking aggregated gather whose payload the caller has
    /// already materialized, billing it exactly as
    /// [`crate::SharedArena::get_vlist_async`] bills its own: `sources`
    /// lists each distinct source rank with the total bytes and element
    /// count pulled from it (first-touch order), the CPU pays one issue
    /// overhead per source, the vlist statistics count the remote sources,
    /// and the returned handle completes once the slowest (overlapped)
    /// transfer would.  The bytes are explicit rather than derived from
    /// `size_of::<T>()` so a container with a compact wire representation
    /// bills what it actually moves.
    pub fn issue_vlist<T>(&self, data: Vec<T>, sources: &[(usize, usize, u64)]) -> Handle<T> {
        let me = self.rank;
        self.charge_issue_overhead(sources.len().max(1));
        let mut remote_sources = 0usize;
        let mut remote_elements = 0u64;
        let mut remote_bytes = 0u64;
        for &(owner, bytes, elements) in sources {
            if owner != me {
                remote_sources += 1;
                remote_elements += elements;
                remote_bytes += bytes as u64;
            }
        }
        if remote_sources > 0 {
            self.record_vlist(remote_sources, remote_elements, remote_bytes);
        }
        let pairs: Vec<(usize, usize)> = sources.iter().map(|&(o, b, _)| (o, b)).collect();
        let complete_at = self.now() + self.gather_cost(&pairs);
        Handle { data, complete_at }
    }

    // ----------------------------------------------------------------------
    // Synchronization
    // ----------------------------------------------------------------------

    /// UPC barrier: blocks (for real) until every rank arrives and aligns the
    /// simulated clocks to the latest arrival, plus the barrier cost.
    ///
    /// Barriers also advance the rank's *synchronization epoch*
    /// ([`Ctx::epoch`]), which the software-caching layer
    /// ([`crate::swcache`]) uses as its invalidation point.
    pub fn barrier(&self) {
        let max = self.world.align_clocks(self.rank, self.clock.get());
        let waited = self.advance_to(max);
        let cost = self.machine().barrier_cost();
        self.advance(cost);
        self.epoch.set(self.epoch.get() + 1);
        self.with_stats(|s| s.sync_seconds += waited + cost);
    }

    /// The rank's synchronization epoch: the number of barriers this rank has
    /// passed.  Software caches of shared data are only coherent within one
    /// epoch (MuPC-style caching, §8 of the paper, writes back and
    /// invalidates at every synchronization point).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// Waits for a non-blocking transfer to complete
    /// (the emulated `bupc_waitsync`), returning its payload.
    pub fn wait_sync<T>(&self, handle: Handle<T>) -> Vec<T> {
        let waited = self.advance_to(handle.complete_at);
        self.with_stats(|s| s.comm_seconds += waited);
        handle.data
    }

    /// Polls a non-blocking transfer (the emulated `bupc_trysync`): returns
    /// the payload if the transfer already completed, otherwise hands the
    /// handle back after charging a small polling cost.
    pub fn try_sync<T>(&self, handle: Handle<T>) -> Result<Vec<T>, Handle<T>> {
        self.charge_issue_overhead(1);
        if handle.complete_at <= self.now() {
            Ok(handle.data)
        } else {
            Err(handle)
        }
    }

    /// Next collective sequence number (all ranks call collectives in the
    /// same order, so this identifies the matching operation across ranks).
    pub(crate) fn next_collective_seq(&self) -> u64 {
        let seq = self.coll_seq.get();
        self.coll_seq.set(seq + 1);
        seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::runtime::Runtime;

    #[test]
    fn compute_charges_scale_with_pthreads_overhead() {
        let process = Runtime::new(Machine::power5(2, 1, false));
        let t_process = process.run(|ctx| {
            ctx.charge_interactions(1_000_000);
            ctx.now()
        });
        let pthread = Runtime::new(Machine::power5(2, 1, true));
        let t_pthread = pthread.run(|ctx| {
            ctx.charge_interactions(1_000_000);
            ctx.now()
        });
        assert!(t_pthread.ranks[0].result > 1.5 * t_process.ranks[0].result);
    }

    #[test]
    fn shared_ptr_interactions_cost_more() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| {
            ctx.charge_interactions(1000);
            let local = ctx.now();
            ctx.charge_interactions_shared_ptr(1000);
            (local, ctx.now() - local)
        });
        let (local, shared) = report.ranks[0].result;
        assert!(shared > local);
    }

    #[test]
    fn wait_sync_advances_clock_to_completion() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let handle = Handle { data: vec![1u8, 2, 3], complete_at: 5.0 };
            let data = ctx.wait_sync(handle);
            assert_eq!(data, vec![1, 2, 3]);
            ctx.now()
        });
        assert!(report.ranks.iter().all(|r| r.result >= 5.0));
    }

    #[test]
    fn try_sync_before_completion_returns_handle() {
        let rt = Runtime::new(Machine::test_cluster(1));
        rt.run(|ctx| {
            let handle = Handle { data: vec![7u32], complete_at: 1.0 };
            let back = ctx.try_sync(handle);
            assert!(back.is_err());
            ctx.charge_compute(2.0);
            let handle = back.unwrap_err();
            let data = ctx.try_sync(handle).expect("should be complete now");
            assert_eq!(data, vec![7]);
        });
    }

    #[test]
    fn lock_billing_counts_acquisitions() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            ctx.bill_lock(0);
            ctx.bill_lock(1);
            ctx.stats_snapshot().lock_acquires
        });
        assert!(report.ranks.iter().all(|r| r.result == 2));
    }

    #[test]
    fn remote_get_is_billed_more_than_local() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            ctx.bill_get(ctx.rank(), 64);
            let local = ctx.now();
            ctx.bill_get((ctx.rank() + 1) % 2, 64);
            (local, ctx.now() - local)
        });
        for r in &report.ranks {
            let (local, remote) = r.result;
            assert!(remote > 10.0 * local, "remote {remote} should dwarf local {local}");
        }
    }
}
