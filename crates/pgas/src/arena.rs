//! Per-rank shared heaps (the emulated `upc_alloc`).
//!
//! Octree cells in the paper are allocated with `upc_alloc`, which places the
//! allocation in the *calling* thread's shared segment and returns a
//! pointer-to-shared.  [`SharedArena`] models exactly that: each rank has a
//! growable region; [`SharedArena::alloc`] appends to the caller's region and
//! returns a [`GlobalPtr`]; any rank may then read or write through the
//! pointer, paying local or remote cost according to affinity.
//!
//! The arena also carries the non-blocking aggregated gather
//! (`bupc_memget_vlist_async`, §5.5) because the paper uses it to fetch cells.

use crate::ctx::{Ctx, Handle};
use crate::gptr::GlobalPtr;
use crate::sync_cell::SyncSlot;
use parking_lot::RwLock;

/// One rank's region of the arena.
struct Region<T> {
    slots: RwLock<Vec<SyncSlot<T>>>,
}

impl<T: Copy> Region<T> {
    fn new() -> Self {
        Region { slots: RwLock::new(Vec::new()) }
    }

    fn push(&self, value: T) -> usize {
        let mut slots = self.slots.write();
        slots.push(SyncSlot::new(value));
        slots.len() - 1
    }

    fn get(&self, index: usize) -> T {
        self.slots.read()[index].get()
    }

    fn set(&self, index: usize, value: T) {
        self.slots.read()[index].set(value);
    }

    fn update<R>(&self, index: usize, f: impl FnOnce(&mut T) -> R) -> R {
        self.slots.read()[index].update(f)
    }

    fn len(&self) -> usize {
        self.slots.read().len()
    }

    fn clear(&self) {
        self.slots.write().clear();
    }
}

/// A partitioned shared heap: one growable region per rank.
pub struct SharedArena<T> {
    regions: Vec<Region<T>>,
}

impl<T: Copy + Send + Sync> SharedArena<T> {
    /// Creates an arena with one empty region per rank.
    pub fn new(ranks: usize) -> Self {
        assert!(ranks > 0, "SharedArena requires at least one rank");
        SharedArena { regions: (0..ranks).map(|_| Region::new()).collect() }
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        self.regions.len()
    }

    /// Number of elements currently allocated in `rank`'s region.
    pub fn len_of(&self, rank: usize) -> usize {
        self.regions[rank].len()
    }

    /// Total number of elements across all regions.
    pub fn total_len(&self) -> usize {
        self.regions.iter().map(|r| r.len()).sum()
    }

    /// Allocates `value` in the calling rank's region (UPC `upc_alloc`) and
    /// returns a pointer-to-shared to it.
    pub fn alloc(&self, ctx: &Ctx, value: T) -> GlobalPtr {
        ctx.charge_local_accesses(1);
        let index = self.regions[ctx.rank()].push(value);
        GlobalPtr::new(ctx.rank(), index)
    }

    /// Dereferences a pointer-to-shared (billed: remote transfer if the
    /// target is remote, otherwise the shared-pointer overhead of a local
    /// dereference).
    pub fn read(&self, ctx: &Ctx, ptr: GlobalPtr) -> T {
        assert!(!ptr.is_null(), "dereference of a null pointer-to-shared");
        let owner = ptr.threadof();
        if owner == ctx.rank() {
            // Local, but still through a pointer-to-shared: pay the
            // dereference surcharge the paper's casting optimization removes.
            ctx.advance(ctx.machine().global_ptr_overhead);
            ctx.charge_local_accesses(1);
        } else {
            ctx.bill_get(owner, std::mem::size_of::<T>());
        }
        self.regions[owner].get(ptr.indexof())
    }

    /// Reads through a pointer the caller has proven local and cast to a
    /// local pointer (§5.2/§5.3 casting): only a plain local access is
    /// charged.
    ///
    /// # Panics
    /// Panics in debug builds if the pointer is not local to the caller.
    pub fn read_local(&self, ctx: &Ctx, ptr: GlobalPtr) -> T {
        debug_assert!(ptr.is_local_to(ctx.rank()), "read_local through a remote pointer");
        ctx.charge_local_accesses(1);
        self.regions[ptr.threadof()].get(ptr.indexof())
    }

    /// Writes through a pointer-to-shared.
    pub fn write(&self, ctx: &Ctx, ptr: GlobalPtr, value: T) {
        assert!(!ptr.is_null(), "write through a null pointer-to-shared");
        let owner = ptr.threadof();
        if owner == ctx.rank() {
            ctx.advance(ctx.machine().global_ptr_overhead);
            ctx.charge_local_accesses(1);
        } else {
            ctx.bill_put(owner, std::mem::size_of::<T>());
        }
        self.regions[owner].set(ptr.indexof(), value);
    }

    /// Local-pointer write counterpart of [`SharedArena::read_local`].
    pub fn write_local(&self, ctx: &Ctx, ptr: GlobalPtr, value: T) {
        debug_assert!(ptr.is_local_to(ctx.rank()), "write_local through a remote pointer");
        ctx.charge_local_accesses(1);
        self.regions[ptr.threadof()].set(ptr.indexof(), value);
    }

    /// Atomic read-modify-write through a pointer-to-shared (used for the
    /// commutative centre-of-mass merges of §5.4: "the update of the center
    /// of mass is done atomically").
    pub fn update<R>(&self, ctx: &Ctx, ptr: GlobalPtr, f: impl FnOnce(&mut T) -> R) -> R {
        assert!(!ptr.is_null(), "update through a null pointer-to-shared");
        let owner = ptr.threadof();
        // A remote atomic update costs a round trip (get + put).
        ctx.bill_get(owner, std::mem::size_of::<T>());
        ctx.bill_put(owner, std::mem::size_of::<T>());
        self.regions[owner].update(ptr.indexof(), f)
    }

    /// Blocking aggregated gather of the listed elements
    /// (an `upc_memget`-per-source equivalent): one message per distinct
    /// source rank.
    pub fn get_vlist(&self, ctx: &Ctx, ptrs: &[GlobalPtr]) -> Vec<T> {
        let handle = self.get_vlist_async(ctx, ptrs);
        ctx.wait_sync(handle)
    }

    /// Non-blocking aggregated gather (the emulated
    /// `bupc_memget_vlist_async`, §5.5): issues one message per distinct
    /// source rank, charges only the CPU-side issue overhead now, and returns
    /// a [`Handle`] whose payload becomes available once the simulated clock
    /// reaches the transfer completion time ([`Ctx::wait_sync`] /
    /// [`Ctx::try_sync`]).
    pub fn get_vlist_async(&self, ctx: &Ctx, ptrs: &[GlobalPtr]) -> Handle<T> {
        let elem = std::mem::size_of::<T>();
        let me = ctx.rank();

        // Group by source rank to count messages and bytes.
        let mut sources: Vec<(usize, usize)> = Vec::new();
        let mut remote_elements = 0u64;
        let mut remote_bytes = 0u64;
        for p in ptrs {
            assert!(!p.is_null(), "vlist gather of a null pointer");
            let owner = p.threadof();
            match sources.iter_mut().find(|(o, _)| *o == owner) {
                Some((_, bytes)) => *bytes += elem,
                None => sources.push((owner, elem)),
            }
            if owner != me {
                remote_elements += 1;
                remote_bytes += elem as u64;
            }
        }

        // CPU-side issue cost now; network completion later.
        ctx.charge_issue_overhead(sources.len().max(1));
        // The §5.5 source statistic counts the *remote* threads a gather
        // touches; purely local gathers generate no communication and are
        // not counted as requests.
        let remote_sources = sources.iter().filter(|&&(o, _)| o != me).count();
        if remote_sources > 0 {
            ctx.record_vlist(remote_sources, remote_elements, remote_bytes);
        }
        let complete_at = ctx.now() + ctx.gather_cost(&sources);

        let data = ptrs.iter().map(|p| self.regions[p.threadof()].get(p.indexof())).collect();
        Handle { data, complete_at }
    }

    /// Clears every region.  Intended to be called by a single rank between
    /// time steps (with barriers around it), mirroring how the paper's code
    /// resets its cell arrays each step.
    pub fn clear(&self, ctx: &Ctx) {
        ctx.charge_local_accesses(1);
        for region in &self.regions {
            region.clear();
        }
    }

    /// Unbilled read for drivers and tests.
    pub fn read_raw(&self, ptr: GlobalPtr) -> T {
        self.regions[ptr.threadof()].get(ptr.indexof())
    }

    /// Unbilled allocation into an explicit rank's region, for test setup and
    /// drivers only.
    pub fn alloc_raw(&self, rank: usize, value: T) -> GlobalPtr {
        GlobalPtr::new(rank, self.regions[rank].push(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::runtime::Runtime;

    #[test]
    fn alloc_has_affinity_to_caller() {
        let rt = Runtime::new(Machine::test_cluster(3));
        let arena: SharedArena<u64> = SharedArena::new(3);
        rt.run(|ctx| {
            let p = arena.alloc(ctx, ctx.rank() as u64 * 7);
            assert_eq!(p.threadof(), ctx.rank());
            assert_eq!(arena.read_local(ctx, p), ctx.rank() as u64 * 7);
        });
        assert_eq!(arena.total_len(), 3);
    }

    #[test]
    fn remote_read_costs_more_than_local() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let arena: SharedArena<u64> = SharedArena::new(2);
        let report = rt.run(|ctx| {
            let p = arena.alloc(ctx, ctx.rank() as u64);
            let all = ctx.allgather(p);
            let t0 = ctx.now();
            let _ = arena.read(ctx, all[ctx.rank()]); // local via shared ptr
            let local_cost = ctx.now() - t0;
            let t1 = ctx.now();
            let _ = arena.read(ctx, all[1 - ctx.rank()]); // remote
            let remote_cost = ctx.now() - t1;
            (local_cost, remote_cost)
        });
        for r in &report.ranks {
            let (local, remote) = r.result;
            assert!(remote > 10.0 * local, "remote={remote} local={local}");
        }
    }

    #[test]
    fn cast_local_read_is_cheaper_than_shared_ptr_read() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let arena: SharedArena<u64> = SharedArena::new(1);
        let report = rt.run(|ctx| {
            let p = arena.alloc(ctx, 5);
            let t0 = ctx.now();
            for _ in 0..1000 {
                let _ = arena.read(ctx, p);
            }
            let shared_cost = ctx.now() - t0;
            let t1 = ctx.now();
            for _ in 0..1000 {
                let _ = arena.read_local(ctx, p);
            }
            let local_cost = ctx.now() - t1;
            (shared_cost, local_cost)
        });
        let (shared, local) = report.ranks[0].result;
        assert!(shared > local, "shared-pointer deref {shared} must exceed cast-local {local}");
    }

    #[test]
    fn write_and_update_through_pointers() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let arena: SharedArena<u64> = SharedArena::new(2);
        rt.run(|ctx| {
            let p = if ctx.rank() == 0 { arena.alloc(ctx, 1) } else { GlobalPtr::NULL };
            let p = ctx.broadcast(0, p);
            ctx.barrier();
            // Both ranks add 10 atomically.
            arena.update(ctx, p, |v| *v += 10);
            ctx.barrier();
            assert_eq!(arena.read(ctx, p), 21);
            ctx.barrier();
            if ctx.rank() == 1 {
                arena.write(ctx, p, 100);
            }
            ctx.barrier();
            assert_eq!(arena.read(ctx, p), 100);
        });
    }

    #[test]
    fn vlist_async_counts_sources_and_hides_latency() {
        let rt = Runtime::new(Machine::test_cluster(4));
        let arena: SharedArena<u64> = SharedArena::new(4);
        let report = rt.run(|ctx| {
            let mine = arena.alloc(ctx, ctx.rank() as u64 + 100);
            let all = ctx.allgather(mine);
            ctx.barrier();

            // Fetch every other rank's element with one aggregated request.
            let remote: Vec<GlobalPtr> =
                all.iter().copied().filter(|p| !p.is_local_to(ctx.rank())).collect();
            let t0 = ctx.now();
            let handle = arena.get_vlist_async(ctx, &remote);
            let issue_cost = ctx.now() - t0;
            // Overlap: do some compute while the gather is in flight.
            ctx.charge_interactions(1000);
            let values = ctx.wait_sync(handle);
            let snapshot = ctx.stats_snapshot();
            (values, issue_cost, snapshot.vlist_requests, snapshot.vlist_single_source)
        });
        for (rank, r) in report.ranks.iter().enumerate() {
            let (values, issue_cost, requests, single) = &r.result;
            let expected: Vec<u64> =
                (0..4).filter(|&s| s != rank).map(|s| s as u64 + 100).collect();
            assert_eq!(values, &expected);
            // Issuing is far cheaper than a blocking remote latency.
            assert!(*issue_cost < 1e-5);
            assert_eq!(*requests, 1);
            assert_eq!(*single, 0, "three distinct sources -> not single-source");
        }
    }

    #[test]
    fn vlist_single_source_statistic() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let arena: SharedArena<u64> = SharedArena::new(2);
        let report = rt.run(|ctx| {
            let mine: Vec<GlobalPtr> = (0..4).map(|i| arena.alloc(ctx, i)).collect();
            let all = ctx.allgather(mine);
            ctx.barrier();
            let other = &all[1 - ctx.rank()];
            let _ = arena.get_vlist(ctx, other);
            ctx.stats_snapshot().vlist_single_source_fraction()
        });
        assert!(report.ranks.iter().all(|r| r.result == Some(1.0)));
    }

    #[test]
    fn clear_resets_regions() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let arena: SharedArena<u32> = SharedArena::new(2);
        rt.run(|ctx| {
            arena.alloc(ctx, 1);
            ctx.barrier();
            if ctx.rank() == 0 {
                arena.clear(ctx);
            }
            ctx.barrier();
            assert_eq!(arena.len_of(ctx.rank()), 0);
        });
        assert_eq!(arena.total_len(), 0);
    }

    #[test]
    #[should_panic(expected = "null pointer")]
    fn null_deref_panics() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let arena: SharedArena<u8> = SharedArena::new(1);
        rt.run(|ctx| {
            let _ = arena.read(ctx, GlobalPtr::NULL);
        });
    }
}
