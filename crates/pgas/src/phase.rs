//! Per-rank phase timing.
//!
//! Every table in the paper breaks execution time down by phase
//! (tree-building, centre-of-mass computation, partitioning, redistribution,
//! force computation, body advancement).  [`PhaseTimer`] records simulated
//! elapsed time per named phase on one rank; the `bh` crate aggregates the
//! per-rank timers into the per-phase maxima that the tables report.

use crate::ctx::Ctx;
use std::collections::BTreeMap;

/// Accumulates simulated time per named phase for a single rank.
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    phases: BTreeMap<String, f64>,
    open: Option<(String, f64)>,
}

impl PhaseTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts timing `phase` at the rank's current simulated time.
    ///
    /// # Panics
    /// Panics if another phase is still open.
    pub fn begin(&mut self, ctx: &Ctx, phase: &str) {
        assert!(
            self.open.is_none(),
            "phase {:?} still open",
            self.open.as_ref().map(|(n, _)| n.clone())
        );
        self.open = Some((phase.to_string(), ctx.now()));
    }

    /// Ends the currently open phase, accumulating the simulated time spent.
    ///
    /// # Panics
    /// Panics if no phase is open or a different phase name is given.
    pub fn end(&mut self, ctx: &Ctx, phase: &str) {
        let (name, start) = self.open.take().expect("no phase open");
        assert_eq!(name, phase, "mismatched phase end");
        *self.phases.entry(name).or_insert(0.0) += ctx.now() - start;
    }

    /// Runs `f` inside the named phase and returns its result.
    pub fn scope<R>(&mut self, ctx: &Ctx, phase: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        self.begin(ctx, phase);
        let r = f(self);
        self.end(ctx, phase);
        r
    }

    /// Accumulated time of `phase` (0 when never recorded).
    pub fn get(&self, phase: &str) -> f64 {
        self.phases.get(phase).copied().unwrap_or(0.0)
    }

    /// All recorded phases and their accumulated times, in name order.
    pub fn phases(&self) -> impl Iterator<Item = (&str, f64)> {
        self.phases.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sum over all phases.
    pub fn total(&self) -> f64 {
        self.phases.values().sum()
    }

    /// Resets every accumulator (used when discarding warm-up steps, as the
    /// paper measures only the last two of four time steps).
    pub fn reset(&mut self) {
        assert!(self.open.is_none(), "cannot reset with a phase open");
        self.phases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::runtime::Runtime;

    #[test]
    fn records_elapsed_simulated_time() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| {
            let mut t = PhaseTimer::new();
            t.begin(ctx, "force");
            ctx.charge_compute(2.0);
            t.end(ctx, "force");
            t.begin(ctx, "tree");
            ctx.charge_compute(1.0);
            t.end(ctx, "tree");
            t.begin(ctx, "force");
            ctx.charge_compute(0.5);
            t.end(ctx, "force");
            (t.get("force"), t.get("tree"), t.get("absent"), t.total())
        });
        let (force, tree, absent, total) = report.ranks[0].result;
        assert!((force - 2.5).abs() < 1e-12);
        assert!((tree - 1.0).abs() < 1e-12);
        assert_eq!(absent, 0.0);
        assert!((total - 3.5).abs() < 1e-12);
    }

    #[test]
    fn scope_times_closure() {
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| {
            let mut t = PhaseTimer::new();
            let out = t.scope(ctx, "x", |_| {
                ctx.charge_compute(1.5);
                42
            });
            (out, t.get("x"))
        });
        assert_eq!(report.ranks[0].result.0, 42);
        assert!((report.ranks[0].result.1 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_accumulators() {
        let rt = Runtime::new(Machine::test_cluster(1));
        rt.run(|ctx| {
            let mut t = PhaseTimer::new();
            t.scope(ctx, "warmup", |_| ctx.charge_compute(1.0));
            t.reset();
            assert_eq!(t.total(), 0.0);
        });
    }

    #[test]
    #[should_panic(expected = "mismatched phase end")]
    fn mismatched_end_panics() {
        let rt = Runtime::new(Machine::test_cluster(1));
        rt.run(|ctx| {
            let mut t = PhaseTimer::new();
            t.begin(ctx, "a");
            t.end(ctx, "b");
        });
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn nested_begin_panics() {
        let rt = Runtime::new(Machine::test_cluster(1));
        rt.run(|ctx| {
            let mut t = PhaseTimer::new();
            t.begin(ctx, "a");
            t.begin(ctx, "b");
        });
    }
}
