//! Locally essential tree (LET) construction by explicit message passing.
//!
//! In the UPC code, remote octree cells are pulled in on demand during the
//! force walk and cached (§5.3/§5.5 of the paper).  A message-passing code
//! cannot dereference a remote pointer, so it does the inverse: *before* the
//! force phase, every rank pushes to every other rank exactly the part of its
//! local tree that the other rank could possibly need — Salmon's "locally
//! essential tree" (cited as [21] by the paper).  After the exchange each
//! rank walks a purely local tree and the force phase needs no communication
//! at all.
//!
//! Export rule: for a destination whose bodies all lie inside a bounding box
//! `B`, a local cell may be summarised as a single point mass if it satisfies
//! the `l/d < θ` opening criterion for **every** point of `B` (i.e. using the
//! minimum distance from `B` to the cell's centre of mass).  Cells that fail
//! the test are opened and their children considered; leaves that fail are
//! exported body-by-body.  The receiver therefore gets, from each peer, a
//! list of point masses that is guaranteed to be sufficient for a θ-accurate
//! walk over its own bodies.

use nbody::body::Body;
use nbody::vec3::Vec3;
use octree::tree::{Octree, NO_CHILD};
use octree::walk::cell_is_far;
use pgas::Ctx;
use serde::{Deserialize, Serialize};

/// Message tag used by the LET exchange.
pub const LET_TAG: u64 = 0x4c45_5421; // "LET!"

/// One exported element of a locally essential tree: either a far-cell
/// summary or an individual body, both reduced to a point mass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LetItem {
    /// Position (the cell's centre of mass, or the body position).
    pub pos: Vec3,
    /// Mass.
    pub mass: f64,
    /// `true` when this item summarises a whole cell rather than one body.
    pub is_summary: bool,
}

/// An axis-aligned bounding box of a rank's domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainBox {
    /// Lower corner.
    pub lo: Vec3,
    /// Upper corner.
    pub hi: Vec3,
    /// `false` when the rank owns no bodies (the box is then meaningless).
    pub occupied: bool,
}

impl DomainBox {
    /// The bounding box of a set of bodies.
    pub fn of(bodies: &[Body]) -> DomainBox {
        if bodies.is_empty() {
            return DomainBox { lo: Vec3::ZERO, hi: Vec3::ZERO, occupied: false };
        }
        let (lo, hi) = nbody::body::bounding_box(bodies);
        DomainBox { lo, hi, occupied: true }
    }

    /// Squared distance from the closest point of the box to `p`
    /// (zero when `p` lies inside the box).
    pub fn min_dist_sq(&self, p: Vec3) -> f64 {
        let clamped = Vec3::new(
            p.x.clamp(self.lo.x, self.hi.x),
            p.y.clamp(self.lo.y, self.hi.y),
            p.z.clamp(self.lo.z, self.hi.z),
        );
        clamped.dist_sq(p)
    }
}

/// Builds the export list of this rank's tree for a destination domain box.
///
/// Returns the list and the number of tree nodes visited (for work charging).
pub fn export_for(
    tree: &Octree,
    bodies: &[Body],
    dest: &DomainBox,
    theta: f64,
) -> (Vec<LetItem>, u64) {
    let mut items = Vec::new();
    let mut visited = 0u64;
    if !dest.occupied || tree.is_empty() {
        return (items, visited);
    }
    export_node(tree, bodies, 0, dest, theta, &mut items, &mut visited);
    (items, visited)
}

fn export_node(
    tree: &Octree,
    bodies: &[Body],
    node: usize,
    dest: &DomainBox,
    theta: f64,
    items: &mut Vec<LetItem>,
    visited: &mut u64,
) {
    let n = &tree.nodes[node];
    *visited += 1;
    if n.nbodies == 0 {
        return;
    }
    if n.is_leaf {
        for &bi in &n.bodies {
            items.push(LetItem { pos: bodies[bi].pos, mass: bodies[bi].mass, is_summary: false });
        }
        return;
    }
    let dist_sq = dest.min_dist_sq(n.cofm);
    if cell_is_far(n.side(), dist_sq, theta) {
        items.push(LetItem { pos: n.cofm, mass: n.mass, is_summary: true });
        return;
    }
    for octant in 0..8 {
        let child = n.children[octant];
        if child != NO_CHILD {
            export_node(tree, bodies, child as usize, dest, theta, items, visited);
        }
    }
}

/// Exchanges locally essential tree fragments with every other rank using
/// explicit point-to-point messages.
///
/// `tree` must already have its centres of mass computed.  Returns the items
/// imported from all peers (flattened).
pub fn exchange_let(
    ctx: &Ctx,
    tree: &Octree,
    owned: &[Body],
    domains: &[DomainBox],
    theta: f64,
) -> Vec<LetItem> {
    assert_eq!(domains.len(), ctx.ranks(), "one domain box per rank required");
    // Export pass: one message per peer.
    for (dest, domain) in domains.iter().enumerate() {
        if dest == ctx.rank() {
            continue;
        }
        let (items, visited) = export_for(tree, owned, domain, theta);
        ctx.charge_tree_ops(visited);
        ctx.send(dest, LET_TAG, items);
    }
    // Import pass: one receive per peer.
    let mut imported = Vec::new();
    for source in 0..ctx.ranks() {
        if source == ctx.rank() {
            continue;
        }
        imported.extend(ctx.recv::<LetItem>(source, LET_TAG));
    }
    ctx.charge_local_accesses(imported.len() as u64);
    imported
}

/// Total mass of a list of LET items.
pub fn imported_mass(items: &[LetItem]) -> f64 {
    items.iter().map(|i| i.mass).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::plummer::{generate, PlummerConfig};
    use octree::tree::TreeParams;
    use pgas::{Machine, Runtime};

    fn tree_over(bodies: &[Body]) -> Octree {
        let mut t = Octree::build(bodies, TreeParams::default());
        t.compute_mass(bodies);
        t
    }

    #[test]
    fn domain_box_distance() {
        let b = DomainBox { lo: Vec3::ZERO, hi: Vec3::splat(1.0), occupied: true };
        assert_eq!(b.min_dist_sq(Vec3::splat(0.5)), 0.0);
        assert_eq!(b.min_dist_sq(Vec3::new(2.0, 0.5, 0.5)), 1.0);
        assert_eq!(b.min_dist_sq(Vec3::new(-1.0, -1.0, 0.5)), 2.0);
    }

    #[test]
    fn empty_domain_box() {
        let b = DomainBox::of(&[]);
        assert!(!b.occupied);
        let bodies = generate(&PlummerConfig::new(64, 1));
        let tree = tree_over(&bodies);
        let (items, _) = export_for(&tree, &bodies, &b, 1.0);
        assert!(items.is_empty(), "nothing is exported to an empty domain");
    }

    #[test]
    fn export_mass_is_conserved() {
        // Whatever mix of summaries and bodies is exported, the total mass
        // must equal the exporter's total mass (every body is covered exactly
        // once).
        let bodies = generate(&PlummerConfig::new(500, 7));
        let tree = tree_over(&bodies);
        let far_box = DomainBox { lo: Vec3::splat(40.0), hi: Vec3::splat(50.0), occupied: true };
        let near_box = DomainBox { lo: Vec3::splat(-0.2), hi: Vec3::splat(0.2), occupied: true };
        for dest in [far_box, near_box] {
            let (items, _) = export_for(&tree, &bodies, &dest, 1.0);
            let m = imported_mass(&items);
            assert!((m - 1.0).abs() < 1e-9, "exported mass {m} must equal total mass");
        }
    }

    #[test]
    fn far_destination_gets_few_summaries() {
        let bodies = generate(&PlummerConfig::new(500, 7));
        let tree = tree_over(&bodies);
        let far_box = DomainBox { lo: Vec3::splat(100.0), hi: Vec3::splat(101.0), occupied: true };
        let near_box = DomainBox { lo: Vec3::splat(-0.1), hi: Vec3::splat(0.1), occupied: true };
        let (far_items, _) = export_for(&tree, &bodies, &far_box, 1.0);
        let (near_items, _) = export_for(&tree, &bodies, &near_box, 1.0);
        assert!(
            far_items.len() < 10,
            "a very distant domain should receive a handful of summaries"
        );
        assert!(
            near_items.len() > 10 * far_items.len(),
            "a nearby domain needs far more detail ({} vs {})",
            near_items.len(),
            far_items.len()
        );
        assert!(far_items.iter().all(|i| i.is_summary));
    }

    #[test]
    fn smaller_theta_exports_more_detail() {
        let bodies = generate(&PlummerConfig::new(400, 9));
        let tree = tree_over(&bodies);
        let dest = DomainBox { lo: Vec3::splat(1.0), hi: Vec3::splat(2.0), occupied: true };
        let (coarse, _) = export_for(&tree, &bodies, &dest, 1.2);
        let (fine, _) = export_for(&tree, &bodies, &dest, 0.3);
        assert!(fine.len() > coarse.len());
    }

    #[test]
    fn exchange_let_covers_all_remote_mass() {
        let bodies = generate(&PlummerConfig::new(400, 21));
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let per = bodies.len() / ctx.ranks();
            let mine: Vec<Body> = bodies.iter().skip(ctx.rank() * per).take(per).copied().collect();
            let my_mass: f64 = mine.iter().map(|b| b.mass).sum();
            let domains: Vec<DomainBox> = ctx.allgather(DomainBox::of(&mine));
            let tree = tree_over(&mine);
            let imported = exchange_let(ctx, &tree, &mine, &domains, 1.0);
            my_mass + imported_mass(&imported)
        });
        for r in &report.ranks {
            assert!(
                (r.result - 1.0).abs() < 1e-9,
                "own + imported mass must equal the total system mass, got {}",
                r.result
            );
        }
    }

    #[test]
    fn exchange_let_single_rank_is_empty() {
        let bodies = generate(&PlummerConfig::new(100, 3));
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| {
            let tree = tree_over(&bodies);
            let domains = vec![DomainBox::of(&bodies)];
            exchange_let(ctx, &tree, &bodies, &domains, 1.0).len()
        });
        assert_eq!(report.ranks[0].result, 0);
    }
}
