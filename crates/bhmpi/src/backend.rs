//! The message-passing solver as an [`engine`] backend.

use crate::sim::{check_config, run_simulation_on};
use engine::{Backend, SimConfig, SimResult};
use nbody::Body;

/// The MPI-style solver (registry key `mpi`).
///
/// [`Backend::supports`] enforces the pseudo-body id headroom
/// ([`crate::sim::check_config`]), so oversized configurations fail with a
/// clear error before any simulation work starts.
pub struct MpiBackend;

impl Backend for MpiBackend {
    fn name(&self) -> &'static str {
        "mpi"
    }

    fn description(&self) -> &'static str {
        "message-passing solver (Morton decomposition, all-to-all exchange, pushed LETs)"
    }

    fn supports(&self, cfg: &SimConfig) -> Result<(), String> {
        check_config(cfg)
    }

    fn run(&self, cfg: &SimConfig, bodies: Vec<Body>) -> SimResult {
        run_simulation_on(cfg, bodies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PSEUDO_ID_BASE;
    use engine::OptLevel;
    use nbody::plummer::{generate, PlummerConfig};

    #[test]
    fn backend_runs_and_reports_supports() {
        let cfg = SimConfig::test(128, 2, OptLevel::Subspace);
        assert!(MpiBackend.supports(&cfg).is_ok());
        let result = MpiBackend.run(&cfg, generate(&PlummerConfig::new(cfg.nbodies, cfg.seed)));
        assert_eq!(result.bodies.len(), 128);
        assert!(result.phases.force > 0.0);
    }

    #[test]
    fn oversized_configs_are_unsupported() {
        let mut cfg = SimConfig::test(128, 2, OptLevel::Subspace);
        cfg.nbodies = PSEUDO_ID_BASE as usize + 1;
        assert!(MpiBackend.supports(&cfg).is_err());
    }
}
