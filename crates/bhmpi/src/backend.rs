//! The message-passing solver as an [`engine`] backend.

use crate::sim::{check_config, run_simulation_on};
use engine::{Backend, SimConfig, SimResult};
use nbody::Body;

/// The MPI-style solver (registry key `mpi`).
///
/// [`Backend::supports`] validates the configuration, enforces the
/// pseudo-body id headroom ([`crate::sim::check_config`]) and rejects
/// non-[`engine::TreePolicy::Rebuild`] tree policies — this solver rebuilds
/// its local trees and locally-essential imports from scratch every step by
/// construction, so the only *correct* behaviour it can offer a
/// reuse/adaptive caller is the rebuild fallback, and silently substituting
/// it would make policy comparisons lie.  Unsupported configurations fail
/// with a clear error before any simulation work starts.
pub struct MpiBackend;

impl Backend for MpiBackend {
    fn name(&self) -> &'static str {
        "mpi"
    }

    fn description(&self) -> &'static str {
        "message-passing solver (Morton decomposition, all-to-all exchange, pushed LETs)"
    }

    fn supports(&self, cfg: &SimConfig) -> Result<(), String> {
        cfg.validate().map_err(|e| e.to_string())?;
        check_config(cfg)?;
        if cfg.tree_policy.reuses_tree() {
            return Err(format!(
                "tree policy {} is not supported: the message-passing solver rebuilds its \
                 local trees every step (use the default TreePolicy::Rebuild, or the upc \
                 backend for persistent-tree stepping)",
                cfg.tree_policy.name()
            ));
        }
        if cfg.walk == engine::WalkMode::Group {
            return Err("walk mode group is not supported: the message-passing solver walks its \
                 locally essential tree per body (use the default per-body walk, or the upc \
                 backend for group walks)"
                .to_string());
        }
        if cfg.build == engine::TreeBuild::Sorted {
            return Err("tree build sorted is not supported: the message-passing solver already \
                 builds lock-free local trees over its Morton decomposition (use the default \
                 insertion build, or the upc backend for the sorted shared-tree build)"
                .to_string());
        }
        Ok(())
    }

    fn supports_sessions(&self) -> bool {
        // The solver rebuilds its Morton decomposition, local trees and
        // locally-essential imports from the current positions every step
        // and advances with the stateless update, so chunked stepping is
        // bit-identical to one long run — pinned by the session-equivalence
        // integration test.
        true
    }

    fn run(&self, cfg: &SimConfig, bodies: Vec<Body>) -> SimResult {
        run_simulation_on(cfg, bodies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PSEUDO_ID_BASE;
    use engine::OptLevel;
    use nbody::plummer::{generate, PlummerConfig};

    #[test]
    fn backend_runs_and_reports_supports() {
        let cfg = SimConfig::test(128, 2, OptLevel::Subspace);
        assert!(MpiBackend.supports(&cfg).is_ok());
        let result = MpiBackend.run(&cfg, generate(&PlummerConfig::new(cfg.nbodies, cfg.seed)));
        assert_eq!(result.bodies.len(), 128);
        assert!(result.phases.force > 0.0);
    }

    #[test]
    fn oversized_configs_are_unsupported() {
        let mut cfg = SimConfig::test(128, 2, OptLevel::Subspace);
        cfg.nbodies = PSEUDO_ID_BASE as usize + 1;
        assert!(MpiBackend.supports(&cfg).is_err());
    }

    #[test]
    fn invalid_windows_and_reuse_policies_are_unsupported() {
        let mut cfg = SimConfig::test(128, 2, OptLevel::Subspace);
        cfg.measured_steps = cfg.steps + 1;
        assert!(MpiBackend.supports(&cfg).unwrap_err().contains("measured_steps"));

        let mut cfg = SimConfig::test(128, 2, OptLevel::Subspace);
        cfg.tree_policy = engine::TreePolicy::Adaptive;
        let err = MpiBackend.supports(&cfg).unwrap_err();
        assert!(err.contains("not supported"), "{err}");
    }
}
