//! The message-passing simulation driver.
//!
//! Mirrors the protocol of the UPC solver — the same number of time steps
//! with the last `measured_steps` timed, the same per-phase breakdown — but
//! every phase is expressed with explicit message passing: an all-to-all
//! body exchange instead of one-sided redistribution, a pushed
//! locally-essential-tree exchange instead of demand-driven caching, and a
//! purely local force walk.
//!
//! [`run_simulation_on`] accepts caller-provided initial conditions, so any
//! `scenarios` workload runs under message passing; [`run_simulation`] keeps
//! the historical Plummer entry point.  The output is the solver-neutral
//! [`engine::SimResult`], so the bench harness and the integration tests can
//! compare programming models on identical workloads (§9 of the paper: "We
//! plan, in future work, to directly compare the performance of this code to
//! the performance of a similar code expressed in MPI").

use crate::domain::{exchange_bodies, plan};
use crate::letree::{exchange_let, DomainBox, LetItem};
use engine::report::{measurement_begins, Phase, PhaseTimes, RankOutcome, SimResult};
use engine::SimConfig;
use nbody::plummer::{generate, PlummerConfig};
use nbody::Body;
use octree::tree::{Octree, TreeParams};
use octree::walk::accel_on;
use pgas::{Ctx, PhaseTimer, Runtime};

/// Base id given to imported pseudo-bodies so they never collide with real
/// body ids (see [`check_config`] for the enforced headroom).
pub const PSEUDO_ID_BASE: u32 = u32::MAX - (1 << 24);

/// Checks that `cfg` is runnable by this solver.
///
/// Imported locally-essential-tree items are grafted into the local tree as
/// pseudo-bodies with ids `PSEUDO_ID_BASE..`; a run whose real body ids
/// reach that range would silently alias pseudo-bodies with real ones (the
/// force walk excludes interaction partners by id).  Such configurations are
/// rejected with a clear error instead.  The bound is `nbodies <
/// PSEUDO_ID_BASE` — `nbodies == PSEUDO_ID_BASE` (whose highest real id
/// would sit flush against the reserved range) is rejected too, keeping the
/// boundary id unused on both sides.  The other half of the invariant — the
/// per-step LET import count fitting the `1 << 24`-id pseudo window — is
/// only known mid-run and is asserted where the pseudo ids are minted
/// (`graft_imports`).
pub fn check_config(cfg: &SimConfig) -> Result<(), String> {
    if cfg.nbodies as u64 >= PSEUDO_ID_BASE as u64 {
        return Err(format!(
            "nbodies = {} reaches the pseudo-body id space: runs require nbodies < \
             PSEUDO_ID_BASE = {} (ids from there up are reserved for imported LET point masses)",
            cfg.nbodies, PSEUDO_ID_BASE
        ));
    }
    Ok(())
}

/// Per-rank state of the message-passing solver.
struct MpiRankState {
    /// Bodies currently owned by this rank.
    owned: Vec<Body>,
    timer: PhaseTimer,
    tree_local_time: f64,
    let_exchange_time: f64,
    migrated: u64,
}

/// Runs the message-passing Barnes-Hut simulation described by `cfg` over
/// the paper's Plummer initial conditions (see [`run_simulation_on`] for
/// arbitrary workloads).
pub fn run_simulation(cfg: &SimConfig) -> SimResult {
    run_simulation_on(cfg, generate(&PlummerConfig::new(cfg.nbodies, cfg.seed)))
}

/// Runs the message-passing Barnes-Hut simulation described by `cfg` over
/// caller-provided initial conditions (any workload — see the `scenarios`
/// crate).  The bodies must number `cfg.nbodies` with ids `0..n` in order.
///
/// `cfg.opt`, `cfg.n1`–`n3`, `cfg.alpha` and `cfg.vector_reduction` are
/// ignored: they parameterise the UPC optimization ladder, which has no
/// counterpart here.  Everything else (bodies, seed, θ, ε, dt, step counts,
/// machine) is honoured, so a run with the same `SimConfig` is directly
/// comparable to the UPC solver's.
///
/// # Panics
/// Panics when [`SimConfig::validate`] or [`check_config`] rejects `cfg`
/// (unrunnable measurement window, non-positive physics parameters, body
/// ids that would alias the pseudo-body id space) or when the bodies do not
/// match `cfg.nbodies`.
pub fn run_simulation_on(cfg: &SimConfig, all_bodies: Vec<Body>) -> SimResult {
    if let Err(e) = cfg.validate() {
        panic!("bh_mpi::run_simulation_on: invalid config: {e}");
    }
    if let Err(e) = check_config(cfg) {
        panic!("bh_mpi::run_simulation_on: {e}");
    }
    engine::validate_bodies(cfg, &all_bodies);
    let runtime = Runtime::new(cfg.machine.clone());
    let ranks = runtime.ranks();

    let report = runtime.run(|ctx| {
        // Initial distribution: the same block-by-id split the UPC body table
        // uses, so both solvers start from identical ownership.
        let per = cfg.nbodies.div_ceil(ranks.max(1)).max(1);
        let owned: Vec<Body> =
            all_bodies.iter().skip(ctx.rank() * per).take(per).copied().collect();
        let mut st = MpiRankState {
            owned,
            timer: PhaseTimer::new(),
            tree_local_time: 0.0,
            let_exchange_time: 0.0,
            migrated: 0,
        };
        for step in 0..cfg.steps {
            if measurement_begins(cfg, step) {
                st.timer.reset();
                st.tree_local_time = 0.0;
                st.let_exchange_time = 0.0;
                st.migrated = 0;
            }
            run_step(ctx, &mut st, cfg);
        }

        let outcome = RankOutcome {
            phases: PhaseTimes::from_timer(&st.timer),
            tree_local: st.tree_local_time,
            tree_merge: st.let_exchange_time,
            owned_bodies: st.owned.len() as u64,
            migrated_bodies: st.migrated,
            stats: Default::default(),
        };

        // Gather the final body states so the result carries the full,
        // id-ordered system (outside the measured window).
        let gathered = ctx.allgather(st.owned.clone());
        let mut final_bodies: Vec<Body> = gathered.into_iter().flatten().collect();
        final_bodies.sort_unstable_by_key(|b| b.id);
        (outcome, final_bodies)
    });

    let mut ranks_out = Vec::with_capacity(report.ranks.len());
    let mut bodies = Vec::new();
    for r in &report.ranks {
        let (mut outcome, final_bodies) = r.result.clone();
        outcome.stats = r.stats.clone();
        if r.rank == 0 {
            bodies = final_bodies;
        }
        ranks_out.push(outcome);
    }
    SimResult::aggregate(cfg, ranks_out, bodies)
}

/// One message-passing time step.
fn run_step(ctx: &Ctx, st: &mut MpiRankState, cfg: &SimConfig) {
    // Partitioning: agree on the global box and the ownership map.
    st.timer.begin(ctx, Phase::Partition.key());
    let (global, splitters) = plan(ctx, &st.owned);
    st.timer.end(ctx, Phase::Partition.key());

    // Redistribution: all-to-all body exchange.
    st.timer.begin(ctx, Phase::Redistribute.key());
    let (owned, migrated_in) =
        exchange_bodies(ctx, std::mem::take(&mut st.owned), &global, &splitters);
    st.owned = owned;
    st.migrated += migrated_in;
    ctx.barrier();
    st.timer.end(ctx, Phase::Redistribute.key());

    // Tree building: the local octree over owned bodies.
    st.timer.begin(ctx, Phase::TreeBuild.key());
    let local_start = ctx.now();
    let params = TreeParams { leaf_capacity: cfg.leaf_capacity, max_depth: cfg.max_depth };
    let mut tree = Octree::build_in(&st.owned, global.center, global.rsize, params);
    ctx.charge_tree_ops(tree.build_ops);
    st.tree_local_time += ctx.now() - local_start;
    st.timer.end(ctx, Phase::TreeBuild.key());

    // Centre-of-mass computation over the local tree.
    st.timer.begin(ctx, Phase::CenterOfMass.key());
    let visits = tree.compute_mass(&st.owned);
    ctx.charge_tree_ops(visits);
    ctx.barrier();
    st.timer.end(ctx, Phase::CenterOfMass.key());

    // Locally essential tree exchange + grafting of the imported point
    // masses into the local tree (counted as tree building, like the §5.4
    // merge sub-phase it replaces).
    st.timer.begin(ctx, Phase::TreeBuild.key());
    let exchange_start = ctx.now();
    let domains: Vec<DomainBox> = ctx.allgather(DomainBox::of(&st.owned));
    let imported = exchange_let(ctx, &tree, &st.owned, &domains, cfg.theta);
    let walk_bodies = graft_imports(ctx, &mut tree, &st.owned, &imported);
    st.let_exchange_time += ctx.now() - exchange_start;
    ctx.barrier();
    st.timer.end(ctx, Phase::TreeBuild.key());

    // Force computation: purely local walk over the locally essential tree.
    st.timer.begin(ctx, Phase::Force.key());
    let mut interactions = 0u64;
    let mut macs = 0u64;
    for i in 0..st.owned.len() {
        let body = st.owned[i];
        let r = accel_on(&tree, &walk_bodies, body.pos, Some(body.id), cfg.theta, cfg.eps);
        st.owned[i].acc = r.acc;
        st.owned[i].phi = r.phi;
        st.owned[i].cost = r.interactions.max(1);
        interactions += r.interactions as u64;
        macs += r.macs as u64;
    }
    ctx.charge_macs(macs);
    ctx.charge_interactions(interactions);
    ctx.barrier();
    st.timer.end(ctx, Phase::Force.key());

    // Body advancement (same update rule as the UPC solver).
    st.timer.begin(ctx, Phase::Advance.key());
    for b in &mut st.owned {
        b.vel += b.acc * cfg.dt;
        b.pos += b.vel * cfg.dt;
    }
    ctx.charge_local_accesses(2 * st.owned.len() as u64);
    ctx.barrier();
    st.timer.end(ctx, Phase::Advance.key());
}

/// Inserts the imported LET items into the local tree as point masses and
/// returns the combined body slice the force walk runs over.
fn graft_imports(ctx: &Ctx, tree: &mut Octree, owned: &[Body], imported: &[LetItem]) -> Vec<Body> {
    // The pseudo-id window holds `1 << 24` ids; past it the u32 addition
    // below would wrap around into real body ids — the silent aliasing
    // [`check_config`] exists to prevent.  `check_config` bounds the real
    // ids; the per-step import count can only be bounded here, where it is
    // known.
    assert!(
        imported.len() < (1usize << 24),
        "LET import count {} exceeds the pseudo-body id window ({} ids starting at {})",
        imported.len(),
        1u32 << 24,
        PSEUDO_ID_BASE
    );
    let mut walk_bodies = owned.to_vec();
    walk_bodies.reserve(imported.len());
    for (k, item) in imported.iter().enumerate() {
        walk_bodies.push(Body::at_rest(PSEUDO_ID_BASE + k as u32, item.pos, item.mass));
    }
    let ops_before = tree.build_ops;
    for i in owned.len()..walk_bodies.len() {
        tree.insert(&walk_bodies, i, walk_bodies[i].pos);
    }
    ctx.charge_tree_ops(tree.build_ops - ops_before);
    let visits = tree.compute_mass(&walk_bodies);
    ctx.charge_tree_ops(visits);
    walk_bodies
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::OptLevel;
    use nbody::direct;

    fn test_cfg(nbodies: usize, ranks: usize) -> SimConfig {
        SimConfig::test(nbodies, ranks, OptLevel::Subspace)
    }

    fn mean_relative_error(result: &[Body], reference: &[Body]) -> f64 {
        result
            .iter()
            .zip(reference)
            .map(|(a, b)| (a.acc - b.acc).norm() / b.acc.norm().max(1e-12))
            .sum::<f64>()
            / result.len() as f64
    }

    #[test]
    fn forces_agree_with_direct_summation() {
        let cfg = test_cfg(300, 4);
        let result = run_simulation(&cfg);
        assert_eq!(result.bodies.len(), 300);
        // Rebuild the reference at the final positions minus the last kick:
        // simpler and sufficient — compare the *final accelerations* stored in
        // the result against direct summation at the final positions' previous
        // configuration is awkward, so instead check against a fresh direct
        // evaluation at the positions the accelerations were computed for.
        // The advance step moved bodies after the last force evaluation, so
        // roll positions back by one update.
        let rolled_back: Vec<Body> = result
            .bodies
            .iter()
            .map(|b| {
                let mut prev = *b;
                prev.pos -= prev.vel * cfg.dt;
                prev
            })
            .collect();
        let reference = direct::compute_forces(&rolled_back, cfg.eps);
        let err = mean_relative_error(&result.bodies, &reference);
        assert!(err < 0.06, "mean force error vs direct summation too large: {err}");
    }

    #[test]
    fn any_workload_runs_through_run_simulation_on() {
        // Caller-provided bodies (here: a deliberately non-Plummer cold
        // lattice) must flow through the full message-passing pipeline.
        let cfg = test_cfg(216, 3);
        let bodies: Vec<Body> = (0..216u32)
            .map(|i| {
                let (x, y, z) = (i % 6, (i / 6) % 6, i / 36);
                Body::at_rest(
                    i,
                    nbody::Vec3::new(x as f64 - 2.5, y as f64 - 2.5, z as f64 - 2.5),
                    1.0 / 216.0,
                )
            })
            .collect();
        let result = run_simulation_on(&cfg, bodies);
        assert_eq!(result.bodies.len(), 216);
        assert!(result.bodies.iter().enumerate().all(|(i, b)| b.id as usize == i));
        assert!(result.bodies.iter().all(|b| b.pos.is_finite() && b.vel.is_finite()));
        assert!(result.phases.force > 0.0);
    }

    #[test]
    fn pseudo_id_collisions_are_rejected() {
        let mut cfg = test_cfg(64, 2);
        assert!(check_config(&cfg).is_ok());
        cfg.nbodies = PSEUDO_ID_BASE as usize;
        let err = check_config(&cfg).unwrap_err();
        assert!(err.contains("pseudo-body id space"), "{err}");
        cfg.nbodies = PSEUDO_ID_BASE as usize + 7;
        assert!(check_config(&cfg).is_err());
        cfg.nbodies = PSEUDO_ID_BASE as usize - 1;
        assert!(check_config(&cfg).is_ok());
    }

    #[test]
    fn phase_times_are_populated() {
        let cfg = test_cfg(200, 3);
        let result = run_simulation(&cfg);
        assert!(result.phases.force > 0.0);
        assert!(result.phases.tree > 0.0);
        assert!(result.phases.partition > 0.0);
        assert!(result.total > 0.0);
        assert_eq!(result.ranks.len(), 3);
        let owned: u64 = result.ranks.iter().map(|r| r.owned_bodies).sum();
        assert_eq!(owned, 200);
    }

    #[test]
    fn single_rank_run_works() {
        let cfg = test_cfg(128, 1);
        let result = run_simulation(&cfg);
        assert_eq!(result.bodies.len(), 128);
        assert!(result.phases.force > 0.0);
        assert_eq!(result.migration_fraction, 0.0);
    }

    #[test]
    fn force_phase_needs_no_communication() {
        // The defining property of the LET approach: once the exchange is
        // done, the force phase is local.  Communication totals must not grow
        // with extra *measured* steps beyond what the per-step exchanges add;
        // more directly, remote gets (one-sided reads) are never used at all.
        let cfg = test_cfg(200, 4);
        let result = run_simulation(&cfg);
        let stats = result.total_stats();
        assert_eq!(stats.remote_gets, 0, "the MPI solver never reads remotely one-sided");
        assert!(stats.bytes_out > 0, "but it does send messages");
    }

    #[test]
    fn more_ranks_do_not_change_physics() {
        let a = run_simulation(&test_cfg(200, 2));
        let b = run_simulation(&test_cfg(200, 5));
        let mean_diff: f64 =
            a.bodies.iter().zip(&b.bodies).map(|(x, y)| (x.pos - y.pos).norm()).sum::<f64>()
                / a.bodies.len() as f64;
        assert!(mean_diff < 1e-2, "rank count must not change the physics: {mean_diff}");
    }
}
