//! # bh-mpi — a message-passing Barnes-Hut comparator
//!
//! The paper's conclusion (§9) argues that its fully optimized UPC code "is
//! quite similar to an MPI code implementing the same algorithm" and promises
//! a direct comparison as future work; its related-work section (§8) cites
//! Dinan et al.'s hybrid MPI+UPC variant and Warren & Salmon's classic
//! message-passing tree code.  This crate supplies that comparator: a
//! Barnes-Hut solver written the way a distributed-memory MPI code would be,
//! running on the **same emulated machine model** ([`pgas::Machine`]) and
//! the same workloads as the UPC solver, so the two programming models can
//! be compared head-to-head in simulated time.
//!
//! The solver follows the standard message-passing structure:
//!
//! * [`domain`] — Morton-histogram domain decomposition and an all-to-all
//!   body exchange (the explicit counterpart of the §5.2 redistribution);
//! * [`letree`] — locally essential tree exchange: every rank *pushes* the
//!   part of its tree that each peer will need (Salmon's LET), instead of
//!   peers pulling cells on demand as the UPC cache does (§5.3/§5.5);
//! * [`sim`] — the step driver: [`run_simulation_on`] accepts any workload's
//!   initial conditions (every `scenarios` family runs under message
//!   passing) and produces the solver-neutral [`engine::SimResult`];
//! * [`backend`] — [`MpiBackend`], the [`engine::Backend`] registration
//!   (key `mpi`) that makes this solver selectable next to `upc` and
//!   `direct` in `bhsim --backend`/`--compare`.
//!
//! This crate depends only on the neutral [`engine`] vocabulary — not on the
//! UPC solver — so the two competitors stay symmetric.
//!
//! ```
//! use engine::{OptLevel, SimConfig};
//!
//! let cfg = SimConfig::test(256, 2, OptLevel::Subspace);
//! let result = bh_mpi::run_simulation(&cfg);
//! assert_eq!(result.bodies.len(), 256);
//! assert!(result.phases.force > 0.0);
//! ```

pub mod backend;
pub mod domain;
pub mod letree;
pub mod sim;

pub use backend::MpiBackend;
pub use domain::{decompose, Decomposition, GlobalBox};
pub use letree::{DomainBox, LetItem};
pub use sim::{check_config, run_simulation, run_simulation_on, PSEUDO_ID_BASE};
