//! Domain decomposition for the message-passing solver.
//!
//! A message-passing Barnes-Hut code cannot rely on a shared body table: each
//! rank privately owns a subset of the bodies and ownership must be
//! renegotiated explicitly when the distribution drifts.  This module
//! implements the standard Morton-order decomposition used by distributed
//! tree codes (Warren & Salmon, cited as [26] by the paper): bodies are
//! ordered by the Morton code of their coordinates and the ordered sequence
//! is cut into one contiguous, equal-cost segment per rank.
//!
//! The cut points (key *splitters*) are agreed with a weighted sample sort:
//!
//! 1. every rank computes the bounding box of its bodies; an allgather turns
//!    the local boxes into the global root cell;
//! 2. every rank Morton-sorts its bodies, picks a fixed number of samples at
//!    equal-cost intervals, and contributes them (key + represented cost) to
//!    an allgather;
//! 3. every rank independently sorts the combined samples and reads off the
//!    splitter keys at equal-cost quantiles — so all ranks agree on the
//!    ownership map without further communication;
//! 4. an all-to-all exchange moves each body to its owner (the explicit
//!    message-passing counterpart of the paper's §5.2 redistribution, and the
//!    collective repartitioning of Dinan et al. cited in §8).

use nbody::body::Body;
use nbody::morton;
use nbody::vec3::Vec3;
use pgas::Ctx;

/// Number of splitter samples each rank contributes per decomposition round.
pub const SAMPLES_PER_RANK: usize = 32;

/// The global root-cell geometry agreed by all ranks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalBox {
    /// Centre of the global root cell.
    pub center: Vec3,
    /// Side length of the global root cell (power of two, SPLASH-2 style).
    pub rsize: f64,
}

/// The result of one domain-decomposition round on one rank.
#[derive(Debug, Clone)]
pub struct Decomposition {
    /// The global root cell.
    pub global: GlobalBox,
    /// Bodies owned by this rank after the exchange, Morton-sorted.
    pub owned: Vec<Body>,
    /// Bodies that arrived from other ranks during the exchange.
    pub migrated_in: u64,
    /// Morton-key splitters: rank `r` owns keys in
    /// `splitters[r-1]..splitters[r]` (with open ends for the first and last
    /// rank).
    pub splitters: Vec<u64>,
}

/// Computes the global root cell from the locally owned bodies.
///
/// Every rank contributes its local bounding box; the result is identical on
/// all ranks.  Ranks with no bodies contribute a degenerate, ignored box.
pub fn global_box(ctx: &Ctx, owned: &[Body]) -> GlobalBox {
    ctx.charge_local_accesses(owned.len() as u64);
    let (lo, hi) = if owned.is_empty() {
        (Vec3::splat(f64::INFINITY), Vec3::splat(f64::NEG_INFINITY))
    } else {
        nbody::body::bounding_box(owned)
    };
    let boxes = ctx.allgather((lo, hi));
    let mut glo = Vec3::splat(f64::INFINITY);
    let mut ghi = Vec3::splat(f64::NEG_INFINITY);
    for (lo, hi) in boxes {
        glo = glo.min(lo);
        ghi = ghi.max(hi);
    }
    if glo.x > ghi.x {
        // No bodies anywhere.
        return GlobalBox { center: Vec3::ZERO, rsize: 1.0 };
    }
    let center = (glo + ghi) * 0.5;
    let half_extent = (ghi - glo).max_abs_component() * 0.5;
    let mut rsize = 1.0_f64;
    while rsize < 2.0 * half_extent + 1e-12 {
        rsize *= 2.0;
    }
    GlobalBox { center, rsize }
}

/// The Morton key of a body position inside the global box.
#[inline]
pub fn key_of(pos: Vec3, global: &GlobalBox) -> u64 {
    morton::encode(pos, global.center, global.rsize)
}

/// Picks up to [`SAMPLES_PER_RANK`] weighted key samples from a rank's
/// Morton-sorted bodies.
///
/// Each sample is `(key, represented_cost)`: the cost of the run of bodies it
/// stands for, so the sum of sample weights equals the rank's total cost.
fn local_samples(owned: &[Body], global: &GlobalBox) -> Vec<(u64, f64)> {
    if owned.is_empty() {
        return Vec::new();
    }
    let mut keyed: Vec<(u64, f64)> =
        owned.iter().map(|b| (key_of(b.pos, global), b.cost.max(1) as f64)).collect();
    keyed.sort_unstable_by_key(|&(k, _)| k);
    let total: f64 = keyed.iter().map(|&(_, c)| c).sum();
    let nsamples = SAMPLES_PER_RANK.min(keyed.len());
    let chunk = total / nsamples as f64;

    let mut samples = Vec::with_capacity(nsamples);
    let mut acc = 0.0;
    let mut since_last = 0.0;
    for &(key, cost) in &keyed {
        acc += cost;
        since_last += cost;
        if acc + 1e-12 >= chunk * (samples.len() + 1) as f64 {
            samples.push((key, since_last));
            since_last = 0.0;
        }
    }
    if since_last > 0.0 {
        // Attach any residual cost to the last sample so weights stay exact.
        if let Some(last) = samples.last_mut() {
            last.1 += since_last;
        } else {
            samples.push((keyed.last().unwrap().0, since_last));
        }
    }
    samples
}

/// Derives `ranks − 1` splitter keys from the combined weighted samples.
///
/// Deterministic, so every rank computes the same splitters from the same
/// allgathered samples.
pub fn splitters_from_samples(mut samples: Vec<(u64, f64)>, ranks: usize) -> Vec<u64> {
    assert!(ranks > 0, "cannot decompose over zero ranks");
    if ranks == 1 {
        return Vec::new();
    }
    samples.sort_unstable_by_key(|&(k, _)| k);
    let total: f64 = samples.iter().map(|&(_, c)| c).sum();
    if total == 0.0 || samples.is_empty() {
        return vec![u64::MAX; ranks - 1];
    }
    let per_rank = total / ranks as f64;
    let mut splitters = Vec::with_capacity(ranks - 1);
    let mut acc = 0.0;
    for &(key, cost) in &samples {
        acc += cost;
        while splitters.len() < ranks - 1 && acc >= per_rank * (splitters.len() + 1) as f64 {
            // Keys strictly greater than the splitter go to the next rank.
            splitters.push(key);
        }
    }
    while splitters.len() < ranks - 1 {
        splitters.push(u64::MAX);
    }
    splitters
}

/// The rank owning a Morton key under the given splitters.
#[inline]
pub fn owner_of(key: u64, splitters: &[u64]) -> usize {
    splitters.partition_point(|&s| s < key)
}

/// Computes the ownership plan: global box and Morton-key splitters
/// (one sample allgather).  This is the "partitioning" part of a
/// decomposition round; no body moves yet.
pub fn plan(ctx: &Ctx, owned: &[Body]) -> (GlobalBox, Vec<u64>) {
    let global = global_box(ctx, owned);
    let samples = local_samples(owned, &global);
    ctx.charge_local_accesses(owned.len() as u64);
    let all_samples: Vec<(u64, f64)> = ctx.allgather(samples).into_iter().flatten().collect();
    let splitters = splitters_from_samples(all_samples, ctx.ranks());
    (global, splitters)
}

/// Moves every body to the owner designated by the plan (an all-to-all
/// exchange) and Morton-sorts the received set.
///
/// Returns the new owned set and the number of bodies that arrived from
/// other ranks.
pub fn exchange_bodies(
    ctx: &Ctx,
    owned: Vec<Body>,
    global: &GlobalBox,
    splitters: &[u64],
) -> (Vec<Body>, u64) {
    let mut outgoing: Vec<Vec<Body>> = vec![Vec::new(); ctx.ranks()];
    for b in owned {
        let dest = owner_of(key_of(b.pos, global), splitters);
        outgoing[dest].push(b);
    }
    let kept = outgoing[ctx.rank()].len();
    let incoming = ctx.exchange(outgoing);

    let mut owned: Vec<Body> = incoming.into_iter().flatten().collect();
    let migrated_in = (owned.len() - kept) as u64;
    // Keep bodies Morton-sorted so later tree builds and walks have locality.
    owned.sort_unstable_by_key(|b| key_of(b.pos, global));
    ctx.charge_local_accesses(owned.len() as u64);
    (owned, migrated_in)
}

/// Runs one full decomposition round: global box, splitter agreement and the
/// all-to-all body exchange.
///
/// `owned` is consumed; the returned [`Decomposition`] holds this rank's new
/// body set.
pub fn decompose(ctx: &Ctx, owned: Vec<Body>) -> Decomposition {
    let (global, splitters) = plan(ctx, &owned);
    let (owned, migrated_in) = exchange_bodies(ctx, owned, &global, &splitters);
    Decomposition { global, owned, migrated_in, splitters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::plummer::{generate, PlummerConfig};
    use pgas::{Machine, Runtime};

    /// Splits the Plummer bodies block-wise, as the initial distribution does.
    fn block_split(bodies: &[Body], ranks: usize, rank: usize) -> Vec<Body> {
        let per = bodies.len().div_ceil(ranks);
        bodies.iter().skip(rank * per).take(per).copied().collect()
    }

    #[test]
    fn global_box_contains_every_body() {
        let bodies = generate(&PlummerConfig::new(512, 3));
        let rt = Runtime::new(Machine::test_cluster(4));
        let all = bodies.clone();
        let report = rt.run(|ctx| {
            let mine = block_split(&bodies, ctx.ranks(), ctx.rank());
            global_box(ctx, &mine)
        });
        let gb = report.ranks[0].result;
        for r in &report.ranks {
            assert_eq!(r.result, gb, "all ranks must agree on the global box");
        }
        for b in &all {
            assert!((b.pos - gb.center).max_abs_component() <= gb.rsize / 2.0 + 1e-9);
        }
    }

    #[test]
    fn splitters_cover_the_key_space_in_order() {
        let samples: Vec<(u64, f64)> = (0..256).map(|i| (i as u64 * 1000, 1.0)).collect();
        for ranks in [1, 2, 3, 8, 16] {
            let s = splitters_from_samples(samples.clone(), ranks);
            assert_eq!(s.len(), ranks - 1);
            for w in s.windows(2) {
                assert!(w[0] <= w[1], "splitters must be non-decreasing");
            }
            // Every key maps to a valid owner.
            for &(k, _) in &samples {
                assert!(owner_of(k, &s) < ranks);
            }
        }
    }

    #[test]
    fn splitters_balance_uniform_cost() {
        let samples: Vec<(u64, f64)> = (0..1024).map(|i| (i as u64, 1.0)).collect();
        let s = splitters_from_samples(samples.clone(), 8);
        let mut counts = vec![0usize; 8];
        for &(k, _) in &samples {
            counts[owner_of(k, &s)] += 1;
        }
        let ideal = 1024.0 / 8.0;
        for c in &counts {
            assert!((*c as f64) < 1.3 * ideal, "owner count {c} too far above ideal {ideal}");
            assert!(*c > 0);
        }
    }

    #[test]
    fn empty_samples_give_degenerate_splitters() {
        let s = splitters_from_samples(Vec::new(), 4);
        assert_eq!(s, vec![u64::MAX; 3]);
        assert_eq!(owner_of(12345, &s), 0);
    }

    #[test]
    fn decompose_preserves_every_body_exactly_once() {
        let bodies = generate(&PlummerConfig::new(600, 11));
        let rt = Runtime::new(Machine::test_cluster(5));
        let report = rt.run(|ctx| {
            let mine = block_split(&bodies, ctx.ranks(), ctx.rank());
            let d = decompose(ctx, mine);
            d.owned.iter().map(|b| b.id).collect::<Vec<_>>()
        });
        let mut seen = vec![false; 600];
        for r in &report.ranks {
            for &id in &r.result {
                assert!(!seen[id as usize], "body {id} owned twice");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every body must have exactly one owner");
    }

    #[test]
    fn decompose_balances_cost() {
        let mut bodies = generate(&PlummerConfig::new(2000, 13));
        for b in &mut bodies {
            b.cost = (1.0 + 30.0 / (0.1 + b.pos.norm())) as u32;
        }
        let rt = Runtime::new(Machine::test_cluster(8));
        let report = rt.run(|ctx| {
            let mine = block_split(&bodies, ctx.ranks(), ctx.rank());
            let d = decompose(ctx, mine);
            d.owned.iter().map(|b| b.cost.max(1) as u64).sum::<u64>()
        });
        let costs: Vec<u64> = report.ranks.iter().map(|r| r.result).collect();
        let total: u64 = costs.iter().sum();
        let ideal = total as f64 / costs.len() as f64;
        let max = *costs.iter().max().unwrap() as f64;
        assert!(max < 1.4 * ideal, "max rank cost {max} vs ideal {ideal}");
    }

    #[test]
    fn decompose_owned_sets_are_spatially_compact() {
        let bodies = generate(&PlummerConfig::new(800, 17));
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let mine = block_split(&bodies, ctx.ranks(), ctx.rank());
            let d = decompose(ctx, mine);
            d.owned
        });
        let mean_dist = |set: &[Body]| {
            let mut total = 0.0;
            let mut count = 0usize;
            for (a, i) in set.iter().enumerate() {
                for j in set.iter().skip(a + 1) {
                    total += i.pos.dist(j.pos);
                    count += 1;
                }
            }
            if count == 0 {
                0.0
            } else {
                total / count as f64
            }
        };
        let global = mean_dist(&bodies);
        let zonal: f64 = report.ranks.iter().map(|r| mean_dist(&r.result)).sum::<f64>()
            / report.ranks.len() as f64;
        assert!(zonal < 0.85 * global, "owned sets should be compact: {zonal} vs {global}");
    }

    #[test]
    fn second_decomposition_migrates_little() {
        // Once bodies are distributed by Morton range, re-running the
        // decomposition without moving anything should migrate only what the
        // re-sampled splitters shift at the boundaries — the §5.2 "ownership
        // is stable" property.
        let bodies = generate(&PlummerConfig::new(1000, 19));
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let mine = block_split(&bodies, ctx.ranks(), ctx.rank());
            let first = decompose(ctx, mine);
            let second = decompose(ctx, first.owned.clone());
            (first.migrated_in, second.migrated_in, second.owned.len())
        });
        for r in &report.ranks {
            let (_, second_migrated, owned) = r.result;
            assert!(
                (second_migrated as f64) < 0.15 * owned.max(1) as f64,
                "re-decomposition should move few bodies ({second_migrated} of {owned} moved)"
            );
        }
    }

    #[test]
    fn single_rank_decomposition_is_identity_up_to_order() {
        let bodies = generate(&PlummerConfig::new(200, 23));
        let rt = Runtime::new(Machine::test_cluster(1));
        let report = rt.run(|ctx| decompose(ctx, bodies.clone()));
        let d = &report.ranks[0].result;
        assert_eq!(d.owned.len(), 200);
        assert_eq!(d.migrated_in, 0);
        assert!(d.splitters.is_empty());
        let mut ids: Vec<u32> = d.owned.iter().map(|b| b.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn empty_world_is_handled() {
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| decompose(ctx, Vec::new()));
        for r in &report.ranks {
            assert!(r.result.owned.is_empty());
            assert_eq!(r.result.global.rsize, 1.0);
        }
    }
}
