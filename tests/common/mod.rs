//! Shared helpers for the workspace integration tests.

/// `true` when the suite runs under CI (`CI=true` or `CI=1`).
///
/// The emulator's simulated times carry a little real-scheduling noise:
/// which thread wins a lock or a merge race selects between discrete cost
/// outcomes a few percent apart, and loaded CI runners make the unlucky
/// outcomes far more likely.  The communication/work *counters*, by
/// contrast, are deterministic (identical across back-to-back runs to well
/// under a percent).  Timing-shaped assertions therefore switch to their
/// counter equivalents in CI mode; locally both forms run, keeping the
/// paper's timing claims exercised where a human can rerun a flake.
pub fn deterministic_counters_mode() -> bool {
    std::env::var("CI").map(|v| v == "true" || v == "1").unwrap_or(false)
}
