//! Checkpoint/restore round-trips through `snapstore`: a run interrupted at
//! an arbitrary step and resumed from its serialized checkpoint must land on
//! the same trajectory — positions and velocities bit-for-bit — as the run
//! that was never interrupted, across every scenario family, both tree
//! builds, both lifecycle policies, and both walk modes.  The suite also
//! pins the one piece of state that is easy to drop on the floor: the
//! mid-cadence rebuild phase of a persistent tree.

use barnes_hut_upc::prelude::*;
use proptest::prelude::*;
use snapstore::{Recorder, SimState, Store};

const RANKS: usize = 2;
const NBODIES: usize = 64;

/// Builds the config one checkpoint/resume case runs under.
fn case_config(
    scenario: &dyn Scenario,
    steps: usize,
    seed: u64,
    policy: TreePolicy,
    walk: WalkMode,
    build: TreeBuild,
) -> SimConfig {
    let tuning = scenario.recommended_config();
    let mut cfg = SimConfig::new(NBODIES, Machine::test_cluster(RANKS), OptLevel::CacheLocalTree);
    cfg.steps = steps;
    cfg.measured_steps = steps;
    cfg.seed = seed;
    cfg.theta = tuning.theta;
    cfg.eps = tuning.eps;
    cfg.dt = tuning.dt;
    cfg.tree_policy = policy;
    cfg.walk = walk;
    cfg.build = build;
    cfg
}

/// Runs the uninterrupted trajectory while recording checkpoints, and
/// returns its final bodies plus the checkpoint taken at `checkpoint_step`.
fn run_and_checkpoint(
    scenario_name: &str,
    cfg: &SimConfig,
    checkpoint_step: usize,
) -> (Vec<Body>, SimState) {
    let registry = scenario_registry();
    let family = registry.get(scenario_name).expect("scenario registered");
    let bodies = family.generate(cfg.nbodies, cfg.seed);
    let backends = backend_registry();
    let backend = backends.get("upc").expect("upc backend registered");

    let mut recorder = Recorder::new(scenario_name, "upc", cfg, bodies.clone(), 0);
    let mut checkpoint: Option<SimState> = None;
    let full = backend
        .run_tracked(cfg, bodies, &mut |record| {
            let state = recorder.observe(&record);
            if state.step == checkpoint_step {
                checkpoint = Some(state);
            }
        })
        .expect("uninterrupted run succeeds");
    let state = checkpoint.unwrap_or_else(|| {
        panic!("no checkpoint was recorded at step {checkpoint_step} of {}", cfg.steps)
    });
    (full.bodies, state)
}

/// Serializes the checkpoint into a fresh content-addressed store, loads it
/// back, and resumes — the full persistence pathway, not an in-memory
/// shortcut.
fn store_roundtrip_and_resume(state: &SimState) -> Vec<Body> {
    let dir = std::env::temp_dir().join(format!(
        "bh-snapresume-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let backends = backend_registry();
    let backend = backends.get("upc").expect("upc backend registered");
    let resumed = (|| {
        let store = Store::open(&dir).map_err(|e| e.to_string())?;
        let saved = store.save_token(state).map_err(|e| e.to_string())?;
        let state = store.load(&saved.manifest_hash).map_err(|e| e.to_string())?;
        snapstore::resume(&state, backend, |_| {})
    })();
    let _ = std::fs::remove_dir_all(&dir);
    resumed.expect("store round-trip and resume succeed").bodies
}

fn assert_bodies_bit_equal(a: &[Body], b: &[Body], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: body counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{label}: body order differs");
        for (p, q) in [(x.pos, y.pos), (x.vel, y.vel)] {
            for (u, v) in [(p.x, q.x), (p.y, q.y), (p.z, q.z)] {
                assert_eq!(
                    u.to_bits(),
                    v.to_bits(),
                    "{label}: body {} diverged ({u:e} vs {v:e})",
                    x.id
                );
            }
        }
    }
}

fn bodies_differ(a: &[Body], b: &[Body]) -> bool {
    a.iter().zip(b).any(|(x, y)| {
        x.pos.x.to_bits() != y.pos.x.to_bits()
            || x.pos.y.to_bits() != y.pos.y.to_bits()
            || x.pos.z.to_bits() != y.pos.z.to_bits()
    })
}

proptest! {
    // Each case runs two emulated multi-rank simulations plus a store
    // round-trip; keep the case count modest — the matrix below still gets
    // full coverage from the deterministic test that follows.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline contract: checkpoint anywhere, resume, and the final
    /// positions and velocities are bit-for-bit those of the uninterrupted
    /// run — whatever the scenario family, build, lifecycle, or walk.
    #[test]
    fn resumed_runs_are_bit_identical_to_uninterrupted_runs(
        family_idx in 0usize..6,
        seed in 1u64..1000,
        steps in 4usize..7,
        checkpoint_step in 1usize..6,
        reuse in any::<bool>(),
        rebuild_every in 2usize..4,
        sorted_build in any::<bool>(),
        group_walk in any::<bool>(),
    ) {
        prop_assume!(checkpoint_step < steps);
        let scenario_name = scenarios::BUILTIN_NAMES[family_idx];
        let registry = scenario_registry();
        let family = registry.get(scenario_name).expect("scenario registered");
        let policy = if reuse {
            TreePolicy::Reuse {
                rebuild_every,
                drift_threshold: TreePolicy::DEFAULT_DRIFT_THRESHOLD,
            }
        } else {
            TreePolicy::Rebuild
        };
        let walk = if group_walk { WalkMode::Group } else { WalkMode::PerBody };
        let build = if sorted_build { TreeBuild::Sorted } else { TreeBuild::Insertion };
        let cfg = case_config(family, steps, seed, policy, walk, build);
        let (uninterrupted, state) = run_and_checkpoint(scenario_name, &cfg, checkpoint_step);
        let resumed = store_roundtrip_and_resume(&state);
        assert_bodies_bit_equal(
            &uninterrupted,
            &resumed,
            &format!("{scenario_name}/{policy:?}/{walk:?}/{build:?} @ step {checkpoint_step}"),
        );
    }
}

/// Deterministic sweep of the full 6 × 2 × 2 × 2 matrix (family × build ×
/// policy × walk) at a fixed mid-run checkpoint, so every cell is exercised
/// on every test run rather than only in expectation.
#[test]
fn every_family_build_policy_walk_cell_resumes_bit_exact() {
    for scenario_name in scenarios::BUILTIN_NAMES {
        let registry = scenario_registry();
        let family = registry.get(scenario_name).expect("scenario registered");
        for build in [TreeBuild::Insertion, TreeBuild::Sorted] {
            for policy in [
                TreePolicy::Rebuild,
                TreePolicy::Reuse {
                    rebuild_every: 3,
                    drift_threshold: TreePolicy::DEFAULT_DRIFT_THRESHOLD,
                },
            ] {
                for walk in [WalkMode::PerBody, WalkMode::Group] {
                    let cfg = case_config(family, 5, 11, policy, walk, build);
                    let (uninterrupted, state) = run_and_checkpoint(scenario_name, &cfg, 2);
                    let resumed = store_roundtrip_and_resume(&state);
                    assert_bodies_bit_equal(
                        &uninterrupted,
                        &resumed,
                        &format!("{scenario_name}/{build:?}/{policy:?}/{walk:?}"),
                    );
                }
            }
        }
    }
}

/// The regression the recorder exists to prevent: a checkpoint taken
/// mid-cadence under `TreePolicy::Reuse` must carry the rebuild phase
/// (via its anchor), not just the bodies.  A resume that drops the phase —
/// pretending the checkpointed bodies are a fresh anchor, so the tail
/// starts with a rebuild instead of reusing the step-4 tree — lands on a
/// measurably different trajectory, while the phase-preserving resume is
/// bit-exact.
#[test]
fn dropping_the_reuse_cadence_phase_changes_the_trajectory() {
    let scenario_name = "plummer";
    let registry = scenario_registry();
    let family = registry.get(scenario_name).expect("scenario registered");
    // Pure cadence-driven rebuilds: the drift trigger is disabled (a
    // triggered rebuild would resynchronize the forged run with the true
    // one and mask the dropped phase).
    let policy = TreePolicy::Reuse { rebuild_every: 4, drift_threshold: 1.0 };
    // The tree is built entering step 1 (from the step-0 bodies) and again
    // entering step 5; checkpointing at step 2 puts the run two steps into
    // the four-step cadence, with the next rebuild due at step 5.  A resume
    // that forgets the phase restarts the cadence at step 3 and rebuilds at
    // steps 3 and 7 instead — structurally different trees for most of the
    // tail.
    let cfg = case_config(family, 8, 23, policy, WalkMode::PerBody, TreeBuild::Insertion);
    let (uninterrupted, state) = run_and_checkpoint(scenario_name, &cfg, 2);
    assert_eq!(state.anchor_step, 0, "the step-0 bodies anchor the current tree");
    assert_eq!(state.steps_since_rebuild(), 2, "checkpoint is mid-cadence");

    let correct = store_roundtrip_and_resume(&state);
    assert_bodies_bit_equal(&uninterrupted, &correct, "phase-preserving resume");

    // Forge the phase-dropped checkpoint an anchor-less snapshotter would
    // have written: current bodies promoted to the anchor, cadence reset.
    let forged =
        SimState { anchor: state.bodies.clone(), anchor_step: state.step, ..state.clone() };
    assert_eq!(forged.steps_since_rebuild(), 0, "forged checkpoint lost the phase");
    let backends = backend_registry();
    let backend = backends.get("upc").expect("upc backend registered");
    let phase_dropped =
        snapstore::resume(&forged, backend, |_| {}).expect("phase-dropped resume still runs");
    assert!(
        bodies_differ(&uninterrupted, &phase_dropped.bodies),
        "dropping the cadence phase silently changed nothing — the regression \
         guard is vacuous (did the tail stop reusing the tree?)"
    );
}
