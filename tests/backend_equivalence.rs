//! Cross-backend equivalence: every scenario family, pushed through the
//! `upc` and `mpi` backends, must agree with the `direct` (exact
//! ground-truth) backend — the property that makes head-to-head timing
//! comparisons meaningful in the first place.

use barnes_hut_upc::engine;
use barnes_hut_upc::prelude::*;

/// One step, one measured step: every backend computes its accelerations at
/// the *same* (initial) positions, so `result.bodies[i].acc` is directly
/// comparable across backends — the advance that follows moves bodies but
/// never touches the stored accelerations.
fn single_step_cfg(scenario: &dyn Scenario, nbodies: usize, ranks: usize) -> SimConfig {
    let mut cfg = SimConfig::test(nbodies, ranks, OptLevel::Subspace);
    cfg.steps = 1;
    cfg.measured_steps = 1;
    let tuning = scenario.recommended_config();
    cfg.theta = tuning.theta;
    cfg.eps = tuning.eps;
    cfg.dt = tuning.dt;
    cfg
}

fn mean_relative_acc_error(result: &[Body], reference: &[Body]) -> f64 {
    result
        .iter()
        .zip(reference)
        .map(|(a, b)| (a.acc - b.acc).norm() / b.acc.norm().max(1e-12))
        .sum::<f64>()
        / result.len().max(1) as f64
}

#[test]
fn every_scenario_agrees_with_direct_on_every_tree_backend() {
    let scenarios = scenario_registry();
    let backends = backend_registry();
    let direct = backends.get("direct").expect("direct is a builtin backend");
    for scenario in scenarios.iter() {
        let cfg = single_step_cfg(scenario, 128, 3);
        let bodies = scenario.generate(cfg.nbodies, cfg.seed);
        let reference = direct.run(&cfg, bodies.clone());
        assert_eq!(reference.bodies.len(), cfg.nbodies, "{}", scenario.name());

        for backend_name in ["upc", "mpi"] {
            let backend = backends.get(backend_name).expect("builtin backend");
            backend
                .supports(&cfg)
                .unwrap_or_else(|e| panic!("{backend_name} must support the test config: {e}"));
            let result = backend.run(&cfg, bodies.clone());

            // The body sets are id-for-id identical (pre-advance identity:
            // the advance changes positions, never membership or ids).
            assert_eq!(
                result.bodies.len(),
                reference.bodies.len(),
                "{}/{backend_name}",
                scenario.name()
            );
            for (i, (a, b)) in result.bodies.iter().zip(&reference.bodies).enumerate() {
                assert_eq!(a.id, b.id, "{}/{backend_name} body {i}", scenario.name());
                assert_eq!(a.id as usize, i, "{}/{backend_name}", scenario.name());
                assert_eq!(a.mass, b.mass, "{}/{backend_name} body {i}", scenario.name());
            }

            // θ≈1 Barnes-Hut approximates the exact sum to a few percent.
            let err = mean_relative_acc_error(&result.bodies, &reference.bodies);
            assert!(
                err < 0.12,
                "{}/{backend_name}: mean acceleration error vs direct too large: {err}",
                scenario.name()
            );
            assert!(
                result.bodies.iter().all(|b| b.acc.is_finite() && b.pos.is_finite()),
                "{}/{backend_name} produced non-finite state",
                scenario.name()
            );
        }
    }
}

#[test]
fn compare_driver_runs_all_three_backends_on_one_workload() {
    let scenarios = scenario_registry();
    let backends = backend_registry();
    let hernquist = scenarios.get("hernquist").expect("hernquist is builtin");
    let cfg = single_step_cfg(hernquist, 96, 2);
    let bodies = hernquist.generate(cfg.nbodies, cfg.seed);
    let names: Vec<String> = ["upc", "mpi", "direct"].iter().map(|s| s.to_string()).collect();
    let runs = engine::run_backends(&backends, &names, &cfg, &bodies).unwrap();
    assert_eq!(runs.len(), 3);
    for run in &runs {
        assert_eq!(run.result.bodies.len(), 96, "{}", run.name);
        assert!(run.result.total > 0.0, "{}", run.name);
    }
    let table = engine::comparison_table(&runs);
    for name in ["upc", "mpi", "direct"] {
        assert!(table.contains(name), "table must have a {name} column:\n{table}");
    }
    assert!(table.contains("Force Comp."));
    assert!(table.contains("TOTAL"));
}

#[test]
fn mpi_backend_rejects_pseudo_id_collisions_through_the_registry() {
    let backends = backend_registry();
    let mpi = backends.get("mpi").unwrap();
    let mut cfg = SimConfig::test(64, 2, OptLevel::Subspace);
    assert!(mpi.supports(&cfg).is_ok());
    cfg.nbodies = bh_mpi::PSEUDO_ID_BASE as usize + 1;
    let err = mpi.supports(&cfg).unwrap_err();
    assert!(err.contains("pseudo-body"), "{err}");
    // The other backends have no such limit.
    assert!(backends.get("upc").unwrap().supports(&cfg).is_ok());
    assert!(backends.get("direct").unwrap().supports(&cfg).is_ok());
}
