//! Cross-crate integration tests: every optimization level must compute the
//! same physics.
//!
//! The paper's transformations are pure performance optimizations — §7
//! stresses that they "do not change the program semantics".  These tests
//! hold the reproduction to that: every level of the ladder, run on the same
//! initial conditions, must produce accelerations that agree with direct
//! summation within the θ-controlled approximation error, and the final body
//! states across levels must agree closely with each other.

use barnes_hut_upc::prelude::*;
use nbody::direct;

const NBODIES: usize = 220;
const RANKS: usize = 3;

fn run_level(opt: OptLevel) -> SimResult {
    let mut cfg = SimConfig::test(NBODIES, RANKS, opt);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    bh::run_simulation(&cfg)
}

fn mean_relative_acc_error(a: &[Body], b: &[Body]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x.acc - y.acc).norm() / y.acc.norm().max(1e-12)).sum::<f64>()
        / a.len() as f64
}

fn max_position_difference(a: &[Body], b: &[Body]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x.pos - y.pos).norm()).fold(0.0, f64::max)
}

#[test]
fn every_level_is_finite_and_conserves_mass() {
    for opt in OptLevel::ALL {
        let result = run_level(opt);
        assert_eq!(result.bodies.len(), NBODIES, "{}", opt.name());
        let mass: f64 = result.bodies.iter().map(|b| b.mass).sum();
        assert!((mass - 1.0).abs() < 1e-9, "mass not conserved at {}", opt.name());
        for b in &result.bodies {
            assert!(
                b.pos.is_finite() && b.vel.is_finite() && b.acc.is_finite(),
                "non-finite state at {}",
                opt.name()
            );
            assert!(b.cost >= 1, "body cost must be at least one at {}", opt.name());
        }
    }
}

#[test]
fn accelerations_agree_with_direct_summation_within_theta_error() {
    // After the run, bodies carry the acceleration of the last measured step
    // evaluated at (close to) their final positions; recompute the direct
    // sum at those positions for comparison.
    for opt in OptLevel::ALL {
        let result = run_level(opt);
        // The stored acceleration was computed *before* the last advance, so
        // rewind the final half-step worth of drift for the reference by
        // using the positions at force time: pos - vel*dt.
        let cfg_dt = nbody::DEFAULT_DT;
        let force_time_bodies: Vec<Body> = result
            .bodies
            .iter()
            .map(|b| {
                let mut c = *b;
                c.pos = b.pos - b.vel * cfg_dt;
                c
            })
            .collect();
        let reference = direct::compute_forces(&force_time_bodies, nbody::DEFAULT_EPS);
        let err = mean_relative_acc_error(&result.bodies, &reference);
        assert!(
            err < 0.08,
            "{}: mean relative acceleration error {err} vs direct summation too large",
            opt.name()
        );
    }
}

#[test]
fn all_levels_agree_with_each_other_on_final_positions() {
    let baseline = run_level(OptLevel::Baseline);
    for opt in OptLevel::ALL.into_iter().skip(1) {
        let other = run_level(opt);
        let diff = max_position_difference(&baseline.bodies, &other.bodies);
        // Different tree shapes (merged vs inserted vs subspace) change the
        // grouping of distant bodies, so results are not bitwise identical —
        // but after two short steps the positions must still be extremely
        // close on the scale of the system (size ~1).
        assert!(diff < 2e-3, "{} diverged from the baseline by {diff}", opt.name());
    }
}

#[test]
fn cached_levels_match_uncached_levels_exactly() {
    // Levels 2 (uncached walk) and 3 (cached walk) traverse the *same*
    // global tree with the same criterion, so their forces must agree to
    // floating-point noise, not just approximation error.
    let uncached = run_level(OptLevel::Redistribute);
    let cached = run_level(OptLevel::CacheLocalTree);
    let diff = max_position_difference(&uncached.bodies, &cached.bodies);
    assert!(diff < 1e-9, "caching changed the physics: {diff}");
}

#[test]
fn async_engine_matches_blocking_cache_exactly() {
    let merged = run_level(OptLevel::MergedTreeBuild);
    let asynchronous = run_level(OptLevel::AsyncAggregation);
    let diff = max_position_difference(&merged.bodies, &asynchronous.bodies);
    assert!(diff < 1e-9, "asynchronous communication changed the physics: {diff}");
}

#[test]
fn single_rank_runs_work_for_every_level() {
    for opt in OptLevel::ALL {
        let mut cfg = SimConfig::test(100, 1, opt);
        cfg.steps = 2;
        cfg.measured_steps = 1;
        let result = bh::run_simulation(&cfg);
        assert_eq!(result.bodies.len(), 100);
        assert!(result.phases.force > 0.0, "{} must spend time in the force phase", opt.name());
    }
}

#[test]
fn momentum_is_approximately_conserved_over_the_run() {
    let result = run_level(OptLevel::Subspace);
    let momentum: Vec3 = result.bodies.iter().map(|b| b.vel * b.mass).sum();
    // The initial net momentum is zero; tree-force asymmetry introduces a
    // small drift only.
    assert!(momentum.norm() < 1e-3, "net momentum {momentum:?} too large");
}
