//! Guards on the committed benchmark baseline (`BENCH_0009.json`): the CI
//! perf gate diffs against this file, so it must stay schema-valid and keep
//! demonstrating the claims it was committed for — the tree-lifecycle claim
//! that persistent-tree stepping beats per-step rebuild on long
//! trajectories, the group-walk claim that one traversal per body group
//! beats one per body on simulated force time and traversal volume, the
//! tree-build claim that the sorted (Morton sample-sort) build beats
//! lock-based insertion on tree time with a smaller node arena, the
//! serving slice (`service = "bhserve"`) recorded by `bhload` against a live
//! `bhserve` for the CI serving gate, the chaos slice (`service = "chaos"`)
//! recorded by `bhload --chaos` against a daemon with injected faultline
//! faults for the CI chaos gate, and the warm-start slice
//! (`warm = "warm[pK]"`) showing that resuming from a `snapstore`
//! checkpoint beats re-integrating the equilibration prefix from t = 0.

use engine::bench::{
    diff_against_baseline, kernel_regressions, Record, KERNEL_COALESCED, KERNEL_PER_BODY,
};
use std::collections::BTreeSet;

fn committed_record() -> Record {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_0009.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    Record::from_json(&text).expect("committed baseline must be schema-valid")
}

fn previous_record() -> Record {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_0008.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read previous baseline {path}: {e}"));
    Record::from_json(&text).expect("previous baseline must be schema-valid")
}

#[test]
fn committed_baseline_covers_the_scenario_backend_matrix() {
    let record = committed_record();
    let scenarios: BTreeSet<&str> = record.runs.iter().map(|r| r.spec.scenario.as_str()).collect();
    let backends: BTreeSet<&str> = record.runs.iter().map(|r| r.spec.backend.as_str()).collect();
    assert!(scenarios.len() >= 3, "baseline must cover >= 3 scenarios, got {scenarios:?}");
    assert!(backends.len() >= 3, "baseline must cover >= 3 backends, got {backends:?}");
    for run in &record.runs {
        // Per-phase medians and traffic counters are present and sane
        // (validate() checks shape; these are the semantic floors).
        assert!(run.phases_median.force > 0.0, "{}: no force-phase median", run.spec.key());
        assert!(run.interactions > 0, "{}: no interaction counter", run.spec.key());
    }
    // The quick grid CI diffs against is present.
    assert!(
        record.runs.iter().any(|r| r.spec.nbodies <= 1024),
        "baseline must contain the quick grid for the CI perf gate"
    );
}

#[test]
fn committed_baseline_shows_the_coalesced_kernel_winning_at_4096() {
    let record = committed_record();
    let find = |engine: &str| {
        record
            .kernels
            .iter()
            .find(|k| k.scenario == "plummer" && k.nbodies >= 4096 && k.engine == engine)
            .unwrap_or_else(|| panic!("baseline must carry a plummer n>=4096 {engine} kernel"))
    };
    let walk = find(KERNEL_PER_BODY);
    let coalesced = find(KERNEL_COALESCED);
    assert_eq!(walk.interactions, coalesced.interactions, "the A-B pair must evaluate equal work");
    assert!(
        coalesced.force_wall_ms.median < walk.force_wall_ms.median,
        "the committed record must show the leaf-coalesced kernel beating the per-body walk \
         ({:.3} ms vs {:.3} ms)",
        coalesced.force_wall_ms.median,
        walk.force_wall_ms.median
    );
    // The remaining pairs get a small slack so a future baseline
    // regeneration is not failed by sub-percent timer noise on one pair;
    // the flagship pair above stays strict.
    assert!(kernel_regressions(&record, 0.05).is_empty(), "a kernel pair regressed");
}

/// The tree-lifecycle acceptance evidence: on the steps-ladder slice
/// (steps >= 8), the reuse and adaptive policies must beat per-step rebuild
/// on total simulated tree-building time (tree + centre-of-mass phases) for
/// at least two scenario families.
#[test]
fn committed_baseline_shows_persistent_tree_beating_rebuild_on_long_runs() {
    let record = committed_record();
    let tree_time = |scenario: &str, policy: &str, nbodies: usize| -> f64 {
        let run = record
            .runs
            .iter()
            .find(|r| {
                r.spec.scenario == scenario
                    && r.spec.policy.starts_with(policy)
                    && r.spec.steps >= 8
                    && r.spec.nbodies == nbodies
            })
            .unwrap_or_else(|| {
                panic!("baseline must carry the {scenario}/{policy}/n{nbodies} steps-ladder point")
            });
        run.phases_median.tree + run.phases_median.cofm
    };
    let mut winning_families = 0;
    for scenario in ["plummer", "king"] {
        // The full-suite slice runs at n = 4096 (the quick slice at n = 512
        // exists for the CI regeneration, where the margins are thinner).
        let rebuild = tree_time(scenario, "rebuild", 4096);
        let reuse = tree_time(scenario, "reuse", 4096);
        let adaptive = tree_time(scenario, "adaptive", 4096);
        assert!(rebuild > 0.0, "{scenario}: empty rebuild tree time");
        if reuse < rebuild && adaptive < rebuild {
            winning_families += 1;
        }
        assert!(
            reuse < rebuild,
            "{scenario}: reuse ({reuse:.4}s) must beat per-step rebuild ({rebuild:.4}s) on \
             simulated tree-building time at steps >= 8"
        );
    }
    assert!(
        winning_families >= 2,
        "reuse AND adaptive must beat rebuild for at least two scenario families"
    );
}

/// The group-walk acceptance evidence: on the walk slice (steps >= 8,
/// n = 4096, CacheLocalTree), the group rows must beat their per-body
/// comparators on simulated force-phase time *and* on the deterministic
/// traversal counter (`macs`), both with per-step rebuild and with tree
/// reuse — while evaluating the same physics (identical interaction counts
/// under rebuild, where fresh lists reproduce the per-body criterion
/// exactly).
#[test]
fn committed_baseline_shows_group_walks_beating_per_body() {
    let record = committed_record();
    let walk_row = |scenario: &str, policy: &str, walk: &str| {
        record
            .runs
            .iter()
            .find(|r| {
                r.spec.scenario == scenario
                    && r.spec.policy.starts_with(policy)
                    && r.spec.walk == walk
                    && r.spec.opt == "cache-local-tree"
                    && r.spec.steps >= 8
                    && r.spec.nbodies == 4096
            })
            .unwrap_or_else(|| {
                panic!("baseline must carry the {scenario}/{policy}/{walk} walk-slice point")
            })
    };
    for scenario in ["plummer", "king"] {
        for policy in ["rebuild", "reuse"] {
            let per_body = walk_row(scenario, policy, "per-body");
            let group = walk_row(scenario, policy, "group");
            assert!(
                group.phases_median.force < per_body.phases_median.force,
                "{scenario}/{policy}: group force median {:.4}s must beat per-body {:.4}s",
                group.phases_median.force,
                per_body.phases_median.force
            );
            assert!(per_body.macs > 0, "{scenario}/{policy}: baseline must record macs");
            assert!(
                (group.macs as f64) < 0.75 * per_body.macs as f64,
                "{scenario}/{policy}: group macs {} must amortize per-body macs {}",
                group.macs,
                per_body.macs
            );
            if policy == "rebuild" {
                assert_eq!(
                    group.interactions, per_body.interactions,
                    "{scenario}: fresh group lists must evaluate exactly the per-body \
                     interactions"
                );
            }
        }
    }
}

/// The tree-build acceptance evidence: on the full build slice (n = 65536,
/// CacheLocalTree), the sorted build must beat lock-based insertion on
/// simulated tree-building time for every scenario family, with zero lock
/// acquisitions and a strictly smaller peak node arena — and the
/// million-body sorted-only scale row must have completed.
#[test]
fn committed_baseline_shows_sorted_build_beating_insertion() {
    let record = committed_record();
    let build_row = |scenario: &str, build: &str, nbodies: usize| {
        record
            .runs
            .iter()
            .find(|r| {
                r.spec.scenario == scenario
                    && r.spec.build == build
                    && r.spec.nbodies == nbodies
                    && r.spec.opt == "cache-local-tree"
            })
            .unwrap_or_else(|| {
                panic!("baseline must carry the {scenario}/{build}/n{nbodies} build-slice point")
            })
    };
    for scenario in ["plummer", "king", "hernquist", "exp-disk", "cold-cube", "merger"] {
        // The quick slice (n = 2048) must exist for the CI regeneration.
        build_row(scenario, "sorted", 2048);
        build_row(scenario, "insertion", 2048);

        let insertion = build_row(scenario, "insertion", 65536);
        let sorted = build_row(scenario, "sorted", 65536);
        assert!(
            sorted.phases_median.tree < insertion.phases_median.tree,
            "{scenario}: sorted tree time {:.4}s must beat insertion {:.4}s at n = 65536",
            sorted.phases_median.tree,
            insertion.phases_median.tree
        );
        assert!(sorted.tree_bytes > 0, "{scenario}: sorted rows must record tree_bytes");
        assert!(
            sorted.tree_bytes < insertion.tree_bytes,
            "{scenario}: compact arena ({} B) must undercut the fat arena ({} B)",
            sorted.tree_bytes,
            insertion.tree_bytes
        );
        // The sorted build links the tree without touching a single lock.
        assert_eq!(sorted.lock_acquires, 0, "{scenario}: sorted rows must be lock-free");
    }
    let scale = record
        .runs
        .iter()
        .find(|r| r.spec.nbodies == 1_000_000)
        .expect("baseline must carry the million-body scale row");
    assert_eq!(scale.spec.build, "sorted");
    assert!(scale.phases_median.force > 0.0, "scale row must have completed its step");
    assert!(scale.interactions > 0);
}

/// The serving acceptance evidence: the committed baseline carries the
/// `bhload` serving slice — every quick *and* full mix cell, measured under
/// ≥ 1000 concurrent clients, with real latency distributions, and at cell
/// sizes disjoint from the standalone grid so the benchsuite gate and the
/// serving gate never contest the same rows.
#[test]
fn committed_baseline_carries_the_serving_slice() {
    let record = committed_record();
    let serving: Vec<_> =
        record.runs.iter().filter(|r| r.spec.service == engine::bench::SERVICE_BHSERVE).collect();
    // Standalone means the `sim` service only — the chaos slice reuses the
    // serving cell sizes on purpose (it drives the same mix), so it must
    // not be folded into the disjointness check.
    let standalone_sizes: BTreeSet<usize> = record
        .runs
        .iter()
        .filter(|r| r.spec.service == engine::bench::SERVICE_SIM)
        .map(|r| r.spec.nbodies)
        .collect();
    let expected: BTreeSet<(String, String, usize)> =
        bhserve::load::cells(bhserve::load::Mix::Full)
            .iter()
            .map(|c| (c.scenario.to_string(), c.backend.to_string(), c.nbodies))
            .collect();
    let got: BTreeSet<(String, String, usize)> = serving
        .iter()
        .map(|r| (r.spec.scenario.clone(), r.spec.backend.clone(), r.spec.nbodies))
        .collect();
    assert_eq!(got, expected, "baseline must carry exactly the full serving mix");
    for run in &serving {
        let key = run.spec.key();
        assert!(run.latency_ms.median > 0.0, "{key}: serving rows must measure latency");
        assert!(run.latency_ms.p99 >= run.latency_ms.p90, "{key}: latency quantiles inverted");
        assert!(run.throughput_rps > 0.0, "{key}: serving rows must record throughput");
        assert!(run.interactions > 0, "{key}: serving rows carry deterministic counters");
        assert!(
            !standalone_sizes.contains(&run.spec.nbodies),
            "{key}: serving cell sizes must stay disjoint from the standalone grid"
        );
    }
}

/// The faultline acceptance evidence, part 1: the committed baseline
/// carries the chaos slice — every cell of the full mix, recorded by
/// `bhload --chaos` against a live daemon running with injected frame
/// faults and a bounded in-flight limit.  Deterministic counters stay
/// gate-comparable (a recovered request reruns the identical job); the
/// recovery fields record what the faults cost.
#[test]
fn committed_baseline_carries_the_chaos_slice() {
    let record = committed_record();
    let chaos: Vec<_> =
        record.runs.iter().filter(|r| r.spec.service == engine::bench::SERVICE_CHAOS).collect();
    let expected: BTreeSet<(String, String, usize)> =
        bhserve::load::cells(bhserve::load::Mix::Full)
            .iter()
            .map(|c| (c.scenario.to_string(), c.backend.to_string(), c.nbodies))
            .collect();
    let got: BTreeSet<(String, String, usize)> = chaos
        .iter()
        .map(|r| (r.spec.scenario.clone(), r.spec.backend.clone(), r.spec.nbodies))
        .collect();
    assert_eq!(got, expected, "baseline must carry exactly the full chaos mix");
    for run in &chaos {
        let key = run.spec.key();
        assert!(run.latency_ms.median > 0.0, "{key}: chaos rows must measure latency");
        assert!(run.interactions > 0, "{key}: chaos rows carry deterministic counters");
        assert!(
            run.recovery_ms.is_finite() && run.recovery_ms >= 0.0,
            "{key}: ill-formed recovery_ms"
        );
        assert!((0.0..=1.0).contains(&run.error_rate), "{key}: error_rate out of [0, 1]");
    }
    // The injected faults actually bit during the recording — at least one
    // cell paid a visible recovery — yet nothing failed: every row still
    // carries a full latency distribution and its deterministic counters.
    assert!(
        chaos.iter().any(|r| r.recovery_ms > 0.0 && r.error_rate > 0.0),
        "the chaos slice must have been recorded under live faults"
    );
}

/// The faultline acceptance evidence, part 2: injecting faults (and the
/// chaos mix riding along) perturbed *nothing* outside its own slice — every
/// fault-free row and kernel pair of `BENCH_0009.json` is value-identical
/// to its `BENCH_0008.json` ancestor (the only serialized difference is the
/// new recovery fields, which decode as zero from legacy records).
#[test]
fn fault_free_rows_are_identical_to_the_previous_baseline() {
    let current = committed_record();
    let previous = previous_record();
    let encode = |r: &engine::bench::RunRecord| serde_json::to_string(r).unwrap();
    let prev_by_key: std::collections::BTreeMap<String, String> =
        previous.runs.iter().map(|r| (r.spec.key(), encode(r))).collect();
    let mut carried = 0;
    for run in &current.runs {
        if run.spec.service == engine::bench::SERVICE_CHAOS {
            continue;
        }
        let key = run.spec.key();
        let prev = prev_by_key
            .get(&key)
            .unwrap_or_else(|| panic!("{key}: fault-free row has no BENCH_0008 ancestor"));
        assert_eq!(&encode(run), prev, "{key}: fault-free row drifted from BENCH_0008");
        carried += 1;
    }
    assert_eq!(carried, previous.runs.len(), "a BENCH_0008 row vanished from BENCH_0009");
    assert_eq!(current.kernels.len(), previous.kernels.len());
    for (cur, prev) in current.kernels.iter().zip(&previous.kernels) {
        assert_eq!(serde_json::to_string(cur).unwrap(), serde_json::to_string(prev).unwrap());
    }
}

/// The checkpoint/restore acceptance evidence: the committed baseline
/// carries the warm-start slice — for each grid, rows that resume the
/// measured tail from an on-disk `snapstore` checkpoint taken after an
/// untimed equilibration prefix, next to a cold comparator that integrates
/// the same protocol from t = 0.  The warm rows must win on total simulated
/// seconds (they skip the prefix), which is the reason the suspend/resume
/// pathway exists.
#[test]
fn committed_baseline_shows_warm_starts_beating_cold_reintegration() {
    let record = committed_record();
    let warm: Vec<_> =
        record.runs.iter().filter(|r| r.spec.warm != engine::bench::WARM_COLD).collect();
    assert!(warm.len() >= 4, "baseline must carry warm rows for both grids, got {}", warm.len());
    for run in &warm {
        let spec = &run.spec;
        let cold = record
            .runs
            .iter()
            .find(|c| {
                c.spec.warm == engine::bench::WARM_COLD
                    && c.spec.scenario == spec.scenario
                    && c.spec.opt == spec.opt
                    && c.spec.policy == "rebuild"
                    && c.spec.nbodies == spec.nbodies
                    && c.spec.nodes == spec.nodes
                    && c.spec.steps == spec.steps
                    && c.spec.measured_steps == spec.measured_steps
            })
            .unwrap_or_else(|| panic!("{}: warm row has no cold comparator", spec.key()));
        assert!(
            run.total_sim_median < cold.total_sim_median,
            "{}: resuming from a checkpoint ({:.4}s simulated) must beat cold \
             re-integration from t = 0 ({:.4}s)",
            spec.key(),
            run.total_sim_median,
            cold.total_sim_median
        );
        assert!(run.interactions > 0, "{}: warm rows carry deterministic counters", spec.key());
    }
}

/// The baseline-diff direction fixed by this PR, exercised against the
/// committed record itself: a run vanishing from a regenerated record is a
/// violation, while a brand-new point is informational.
#[test]
fn baseline_diff_is_symmetric_over_the_committed_record() {
    let baseline = committed_record();

    // Identical records diff clean in both directions.
    let diff = diff_against_baseline(&baseline, &baseline, 0.25);
    assert!(diff.regressions.is_empty());
    assert!(diff.missing.is_empty());
    assert!(diff.unmatched.is_empty());

    // Direction 1 (current ⊃ baseline): a new sweep point is informational.
    let mut grown = baseline.clone();
    let mut extra = grown.runs[0].clone();
    extra.spec.nodes += 11;
    grown.runs.push(extra);
    let diff = diff_against_baseline(&grown, &baseline, 0.25);
    assert_eq!(diff.unmatched.len(), 1);
    assert!(diff.missing.is_empty());

    // Direction 2 (current ⊂ baseline): a vanished run and a vanished
    // kernel engine are violations.
    let mut shrunk = baseline.clone();
    let dropped_run = shrunk.runs.remove(0);
    let dropped_kernel = shrunk.kernels.remove(0);
    let diff = diff_against_baseline(&shrunk, &baseline, 0.25);
    assert!(
        diff.missing.iter().any(|m| m.contains(&dropped_run.spec.key())),
        "dropped run {} must be reported missing: {:?}",
        dropped_run.spec.key(),
        diff.missing
    );
    assert!(
        diff.missing
            .iter()
            .any(|m| m.contains(&dropped_kernel.engine) && m.contains(&dropped_kernel.scenario)),
        "dropped kernel engine must be reported missing: {:?}",
        diff.missing
    );
}
