//! Guards on the committed benchmark baseline (`BENCH_0003.json`): the CI
//! perf gate diffs against this file, so it must stay schema-valid and keep
//! demonstrating the claims it was committed for.

use engine::bench::{kernel_regressions, Record, KERNEL_COALESCED, KERNEL_PER_BODY};
use std::collections::BTreeSet;

fn committed_record() -> Record {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_0003.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read committed baseline {path}: {e}"));
    Record::from_json(&text).expect("committed baseline must be schema-valid")
}

#[test]
fn committed_baseline_covers_the_scenario_backend_matrix() {
    let record = committed_record();
    let scenarios: BTreeSet<&str> = record.runs.iter().map(|r| r.spec.scenario.as_str()).collect();
    let backends: BTreeSet<&str> = record.runs.iter().map(|r| r.spec.backend.as_str()).collect();
    assert!(scenarios.len() >= 3, "baseline must cover >= 3 scenarios, got {scenarios:?}");
    assert!(backends.len() >= 3, "baseline must cover >= 3 backends, got {backends:?}");
    for run in &record.runs {
        // Per-phase medians and traffic counters are present and sane
        // (validate() checks shape; these are the semantic floors).
        assert!(run.phases_median.force > 0.0, "{}: no force-phase median", run.spec.key());
        assert!(run.interactions > 0, "{}: no interaction counter", run.spec.key());
    }
    // The quick grid CI diffs against is present.
    assert!(
        record.runs.iter().any(|r| r.spec.nbodies <= 1024),
        "baseline must contain the quick grid for the CI perf gate"
    );
}

#[test]
fn committed_baseline_shows_the_coalesced_kernel_winning_at_4096() {
    let record = committed_record();
    let find = |engine: &str| {
        record
            .kernels
            .iter()
            .find(|k| k.scenario == "plummer" && k.nbodies >= 4096 && k.engine == engine)
            .unwrap_or_else(|| panic!("baseline must carry a plummer n>=4096 {engine} kernel"))
    };
    let walk = find(KERNEL_PER_BODY);
    let coalesced = find(KERNEL_COALESCED);
    assert_eq!(walk.interactions, coalesced.interactions, "the A-B pair must evaluate equal work");
    assert!(
        coalesced.force_wall_ms.median < walk.force_wall_ms.median,
        "the committed record must show the leaf-coalesced kernel beating the per-body walk \
         ({:.3} ms vs {:.3} ms)",
        coalesced.force_wall_ms.median,
        walk.force_wall_ms.median
    );
    // The remaining pairs get a small slack so a future baseline
    // regeneration is not failed by sub-percent timer noise on one pair;
    // the flagship pair above stays strict.
    assert!(kernel_regressions(&record, 0.05).is_empty(), "a kernel pair regressed");
}
