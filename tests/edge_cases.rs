//! Edge-case integration tests: degenerate workloads that a robust library
//! must survive (more ranks than bodies, a single body, very deep trees from
//! tight clusters, repeated runs from one shared state).

use barnes_hut_upc::prelude::*;
use pgas::Machine;

mod common;
use common::deterministic_counters_mode;

fn quick(nbodies: usize, ranks: usize, opt: OptLevel) -> SimResult {
    let mut cfg = SimConfig::new(nbodies, Machine::test_cluster(ranks), opt);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    bh::run_simulation(&cfg)
}

#[test]
fn more_ranks_than_bodies() {
    for opt in [
        OptLevel::Baseline,
        OptLevel::CacheLocalTree,
        OptLevel::AsyncAggregation,
        OptLevel::Subspace,
    ] {
        let result = quick(5, 8, opt);
        assert_eq!(result.bodies.len(), 5, "{}", opt.name());
        assert!(result.bodies.iter().all(|b| b.pos.is_finite()), "{}", opt.name());
    }
}

#[test]
fn single_body_system() {
    for opt in [OptLevel::Baseline, OptLevel::Subspace] {
        let result = quick(1, 2, opt);
        assert_eq!(result.bodies.len(), 1);
        // A single body feels no force and drifts freely.
        assert_eq!(result.bodies[0].acc, Vec3::ZERO);
    }
}

#[test]
fn two_bodies_many_ranks() {
    let result = quick(2, 4, OptLevel::MergedTreeBuild);
    assert_eq!(result.bodies.len(), 2);
    // The two bodies attract each other.
    assert!(result.bodies[0].acc.norm() > 0.0);
    assert!(result.bodies[1].acc.norm() > 0.0);
}

#[test]
fn tight_cluster_does_not_blow_up_the_tree() {
    // A configuration with a very small max depth still terminates and keeps
    // physics finite even though bodies are closely clustered.
    let mut cfg = SimConfig::new(200, Machine::test_cluster(4), OptLevel::CacheLocalTree);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg.max_depth = 6;
    let result = bh::run_simulation(&cfg);
    assert!(result.bodies.iter().all(|b| b.acc.is_finite()));
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = quick(300, 4, OptLevel::AsyncAggregation);
    let b = quick(300, 4, OptLevel::AsyncAggregation);
    for (x, y) in a.bodies.iter().zip(&b.bodies) {
        // Concurrent, commutative centre-of-mass merges may reassociate
        // floating-point sums between runs, so allow rounding-level noise.
        assert!((x.pos - y.pos).norm() < 1e-9, "positions must be reproducible run to run");
        assert!((x.vel - y.vel).norm() < 1e-9);
    }
    // The work counters are deterministic run to run (the tree shape is a
    // function of the body positions alone, not of insertion order).
    let (sa, sb) = (a.total_stats(), b.total_stats());
    assert_eq!(sa.interactions, sb.interactions, "interaction counts must be reproducible");
    if deterministic_counters_mode() {
        return;
    }
    // Simulated phase totals are also reproducible up to the nondeterminism
    // of concurrent tree construction order: which rank wins the races
    // during the merged build selects between a few discrete cost outcomes
    // (observed ~7.5% apart on this workload), so require the totals to be
    // close rather than identical.  CI asserts only the counter form above.
    let rel = (a.total - b.total).abs() / a.total.max(1e-12);
    assert!(rel < 0.15, "simulated totals differ by {rel}");
}

#[test]
fn many_steps_stay_finite_and_bounded() {
    let mut cfg = SimConfig::new(150, Machine::test_cluster(2), OptLevel::Subspace);
    cfg.steps = 8;
    cfg.measured_steps = 2;
    let result = bh::run_simulation(&cfg);
    for b in &result.bodies {
        assert!(b.pos.is_finite() && b.vel.is_finite());
        // A Plummer sphere in virial equilibrium stays within a few length
        // units over 8 short steps.
        assert!(b.pos.norm() < 100.0, "body escaped to {:?}", b.pos);
    }
}

#[test]
fn zero_measured_steps_yields_zero_times() {
    let mut cfg = SimConfig::new(64, Machine::test_cluster(2), OptLevel::CacheLocalTree);
    cfg.steps = 1;
    cfg.measured_steps = 1;
    let result = bh::run_simulation(&cfg);
    assert!(result.total > 0.0);
    assert_eq!(result.bodies.len(), 64);
}
