//! Workspace-level property-based tests spanning the `bh` crate's building
//! blocks (partitioning splitters, cell summaries, phase bookkeeping) and the
//! comparison substrates (hashed oct-tree, ORB partitioning, message-passing
//! domain splitters).

use bh::cellnode::CellNode;
use bh::partition::{compute_splitters, PartitionPlan};
use bh::report::{Phase, PhaseTimes};
use nbody::{Body, Vec3};
use octree::hashed::HashedOctree;
use octree::orb::partition_orb;
use octree::tree::TreeParams;
use proptest::prelude::*;

/// Strategy: a set of bodies with positions in a cube and varied masses and
/// costs, suitable for tree and partitioning properties.
fn arbitrary_bodies(max: usize) -> impl Strategy<Value = Vec<Body>> {
    prop::collection::vec(
        ((-8.0f64..8.0, -8.0f64..8.0, -8.0f64..8.0), 0.01f64..4.0, 1u32..40),
        1..max,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), mass, cost))| {
                let mut b = Body::at_rest(i as u32, Vec3::new(x, y, z), mass);
                b.cost = cost;
                b
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn splitters_partition_every_key(
        mut keyed in prop::collection::vec((any::<u64>(), 1u32..50), 1..300),
        parts in 1usize..20,
    ) {
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let splitters = compute_splitters(&keyed, parts);
        prop_assert_eq!(splitters.len(), parts - 1);
        prop_assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        let plan = PartitionPlan { splitters };
        // Every key maps to exactly one zone in range.
        for &(k, _) in &keyed {
            prop_assert!(plan.owner_of_key(k) < parts);
        }
        // Zone assignment is monotone in the key (zones are contiguous).
        for pair in keyed.windows(2) {
            prop_assert!(plan.owner_of_key(pair[0].0) <= plan.owner_of_key(pair[1].0));
        }
    }

    #[test]
    fn splitters_balance_within_one_heavy_body(
        mut keyed in prop::collection::vec((any::<u64>(), 1u32..20), 30..300),
        parts in 2usize..8,
    ) {
        keyed.sort_unstable_by_key(|&(k, _)| k);
        // Avoid duplicate keys straddling zone boundaries, which legitimately
        // skew the balance (all equal keys must land in one zone).
        keyed.dedup_by_key(|&mut (k, _)| k);
        prop_assume!(keyed.len() >= parts * 4);
        let splitters = compute_splitters(&keyed, parts);
        let plan = PartitionPlan { splitters };
        let mut zone_costs = vec![0u64; parts];
        for &(k, c) in &keyed {
            zone_costs[plan.owner_of_key(k)] += c as u64;
        }
        let total: u64 = zone_costs.iter().sum();
        let ideal = total as f64 / parts as f64;
        let heaviest = keyed.iter().map(|&(_, c)| c as u64).max().unwrap() as f64;
        for &z in &zone_costs {
            prop_assert!(z as f64 <= ideal + heaviest + 1.0,
                "zone cost {z} exceeds ideal {ideal} by more than one body ({heaviest})");
        }
    }

    #[test]
    fn cell_summary_merge_is_commutative_and_mass_conserving(
        parts in prop::collection::vec(((-10.0f64..10.0, -10.0f64..10.0, -10.0f64..10.0), 0.01f64..5.0), 1..20),
    ) {
        let mut forward = CellNode::new_cell(Vec3::ZERO, 1.0);
        let mut backward = CellNode::new_cell(Vec3::ZERO, 1.0);
        for &((x, y, z), m) in &parts {
            forward.merge_summary(m, Vec3::new(x, y, z), 1, 1);
        }
        for &((x, y, z), m) in parts.iter().rev() {
            backward.merge_summary(m, Vec3::new(x, y, z), 1, 1);
        }
        let total: f64 = parts.iter().map(|&(_, m)| m).sum();
        prop_assert!((forward.mass - total).abs() < 1e-9);
        prop_assert!((forward.mass - backward.mass).abs() < 1e-9);
        prop_assert!((forward.cofm - backward.cofm).norm() < 1e-6);
        prop_assert_eq!(forward.nbodies as usize, parts.len());
        // The merged centre of mass lies inside the points' bounding box.
        let lo = parts.iter().fold(Vec3::splat(f64::INFINITY), |a, &((x, y, z), _)| a.min(Vec3::new(x, y, z)));
        let hi = parts.iter().fold(Vec3::splat(f64::NEG_INFINITY), |a, &((x, y, z), _)| a.max(Vec3::new(x, y, z)));
        prop_assert!(forward.cofm.x >= lo.x - 1e-9 && forward.cofm.x <= hi.x + 1e-9);
        prop_assert!(forward.cofm.y >= lo.y - 1e-9 && forward.cofm.y <= hi.y + 1e-9);
        prop_assert!(forward.cofm.z >= lo.z - 1e-9 && forward.cofm.z <= hi.z + 1e-9);
    }

    #[test]
    fn phase_times_algebra(
        a in prop::collection::vec(0.0f64..100.0, 6),
        b in prop::collection::vec(0.0f64..100.0, 6),
    ) {
        let mut ta = PhaseTimes::default();
        let mut tb = PhaseTimes::default();
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            ta.set(phase, a[i]);
            tb.set(phase, b[i]);
        }
        let max = ta.max(&tb);
        let sum = ta.add(&tb);
        for (i, phase) in Phase::ALL.into_iter().enumerate() {
            prop_assert_eq!(max.get(phase), a[i].max(b[i]));
            prop_assert!((sum.get(phase) - (a[i] + b[i])).abs() < 1e-12);
            prop_assert!(max.get(phase) <= sum.get(phase));
        }
        prop_assert!((sum.total() - (ta.total() + tb.total())).abs() < 1e-9);
        // Percentages sum to 100 whenever the total is positive.
        if ta.total() > 0.0 {
            let percent_sum: f64 = Phase::ALL.iter().map(|&p| ta.percent(p)).sum();
            prop_assert!((percent_sum - 100.0).abs() < 1e-6);
        }
    }

    #[test]
    fn hashed_octree_agrees_with_pointer_octree(bodies in arbitrary_bodies(120)) {
        let params = TreeParams::default();
        let mut pointer = octree::Octree::build(&bodies, params);
        pointer.compute_mass(&bodies);
        let mut hashed = HashedOctree::build(&bodies, params);
        hashed.compute_mass(&bodies);

        hashed.check_invariants(&bodies).map_err(TestCaseError::fail)?;
        prop_assert_eq!(hashed.len(), pointer.len());
        prop_assert!((hashed.root().mass - pointer.nodes[0].mass).abs() < 1e-9);
        prop_assert!((hashed.root().cofm - pointer.nodes[0].cofm).norm() < 1e-9);

        // Identical forces for a handful of probe bodies.
        for b in bodies.iter().take(8) {
            let p = octree::walk::accel_on(&pointer, &bodies, b.pos, Some(b.id), 1.0, 0.05);
            let h = hashed.accel_on(&bodies, b.pos, Some(b.id), 1.0, 0.05);
            prop_assert!((p.acc - h.acc).norm() < 1e-9);
            prop_assert_eq!(p.interactions, h.interactions);
        }
    }

    #[test]
    fn orb_partition_is_a_disjoint_cover_with_bounded_imbalance(
        bodies in arbitrary_bodies(250),
        parts in 1usize..12,
    ) {
        let p = partition_orb(&bodies, parts);
        prop_assert_eq!(p.len(), parts);
        prop_assert_eq!(p.total_bodies(), bodies.len());
        let mut seen = vec![false; bodies.len()];
        for zone in &p.zones {
            for &i in zone {
                prop_assert!(!seen[i], "body {} assigned twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // With enough bodies per part, no part may dwarf the ideal cost by
        // more than the heaviest body plus the bisection rounding.
        if bodies.len() >= parts * 8 {
            let costs = p.zone_costs(&bodies);
            let total: u64 = costs.iter().sum();
            let ideal = total as f64 / parts as f64;
            let heaviest = bodies.iter().map(|b| b.cost.max(1) as u64).max().unwrap() as f64;
            for &c in &costs {
                prop_assert!(
                    (c as f64) <= ideal + heaviest * (parts as f64).log2().ceil() + 1.0,
                    "zone cost {} too far above ideal {}", c, ideal
                );
            }
        }
    }

    #[test]
    fn mpi_domain_splitters_assign_every_key_monotonically(
        mut samples in prop::collection::vec((any::<u64>(), 0.01f64..10.0), 1..200),
        ranks in 1usize..16,
    ) {
        let splitters = bh_mpi::domain::splitters_from_samples(samples.clone(), ranks);
        prop_assert_eq!(splitters.len(), ranks - 1);
        prop_assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        samples.sort_unstable_by_key(|&(k, _)| k);
        let mut last_owner = 0usize;
        for &(k, _) in &samples {
            let owner = bh_mpi::domain::owner_of(k, &splitters);
            prop_assert!(owner < ranks);
            prop_assert!(owner >= last_owner, "ownership must be monotone in the key");
            last_owner = owner;
        }
    }

    #[test]
    fn cellnode_child_geometry_partitions_the_cell(
        cx in -10.0f64..10.0, cy in -10.0f64..10.0, cz in -10.0f64..10.0,
        half in 0.1f64..10.0,
        px in -1.0f64..1.0, py in -1.0f64..1.0, pz in -1.0f64..1.0,
    ) {
        let cell = CellNode::new_cell(Vec3::new(cx, cy, cz), half);
        // A point inside the cell lands in exactly the child cell whose
        // octant index the cell computes for it.
        let p = cell.center + Vec3::new(px, py, pz) * half;
        let octant = cell.octant_of(p);
        let (child_center, child_half) = cell.child_geometry(octant);
        prop_assert!((p - child_center).max_abs_component() <= child_half + 1e-9);
        // And in no other child.
        for other in 0..8 {
            if other != octant {
                let (oc, oh) = cell.child_geometry(other);
                prop_assert!((p - oc).max_abs_component() >= oh - 1e-9);
            }
        }
    }
}
