//! Integration tests of the tree-lifecycle subsystem: persistent-tree time
//! stepping must degrade into the paper's per-step rebuild exactly when
//! asked to, stay physically accurate over long incremental trajectories,
//! and actually pay off on the tree-building phase.

mod common;

use barnes_hut_upc::prelude::*;
use proptest::prelude::*;

/// Runs one scenario through the `upc` solver under `policy` and returns
/// the final body states plus the per-phase times.
fn run_policy(
    scenario: &str,
    nbodies: usize,
    ranks: usize,
    steps: usize,
    opt: OptLevel,
    seed: u64,
    policy: TreePolicy,
) -> SimResult {
    let registry = scenario_registry();
    let family = registry.get(scenario).expect("scenario registered");
    let tuning = family.recommended_config();
    let mut cfg = SimConfig::new(nbodies, Machine::test_cluster(ranks), opt);
    cfg.steps = steps;
    cfg.measured_steps = steps.div_ceil(2);
    cfg.seed = seed;
    cfg.theta = tuning.theta;
    cfg.eps = tuning.eps;
    cfg.dt = tuning.dt;
    cfg.tree_policy = policy;
    run_simulation_on(&cfg, family.generate(nbodies, seed))
}

/// Asserts two trajectories are bit-for-bit identical (positions,
/// velocities and accelerations compared by their bit patterns).
fn assert_bit_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.bodies.len(), b.bodies.len(), "{label}");
    for (x, y) in a.bodies.iter().zip(&b.bodies) {
        assert_eq!(x.id, y.id, "{label}");
        for (p, q) in [(x.pos, y.pos), (x.vel, y.vel), (x.acc, y.acc)] {
            assert_eq!(p.x.to_bits(), q.x.to_bits(), "{label}: body {}", x.id);
            assert_eq!(p.y.to_bits(), q.y.to_bits(), "{label}: body {}", x.id);
            assert_eq!(p.z.to_bits(), q.z.to_bits(), "{label}: body {}", x.id);
        }
    }
}

/// `Reuse { rebuild_every: 1 }` rebuilds every step by definition, so its
/// trajectory must be bit-for-bit the `Rebuild` trajectory on every
/// registered scenario family (the whole equivalence suite then pins the
/// refactor: the rebuild path *is* the pre-lifecycle solver).
#[test]
fn rebuild_every_step_is_bit_identical_to_rebuild_on_every_family() {
    for scenario in scenario_registry().iter() {
        let rebuild = run_policy(
            scenario.name(),
            160,
            3,
            3,
            OptLevel::CacheLocalTree,
            7,
            TreePolicy::Rebuild,
        );
        let reuse1 = run_policy(
            scenario.name(),
            160,
            3,
            3,
            OptLevel::CacheLocalTree,
            7,
            TreePolicy::Reuse { rebuild_every: 1, drift_threshold: 0.25 },
        );
        assert_bit_identical(&rebuild, &reuse1, scenario.name());
    }
}

/// `drift_threshold: 0` forces a rebuild the moment any body leaves its
/// leaf's cell bounds, so the only steps that reuse the tree are zero-drift
/// steps — which reproduce a fresh build's summaries exactly at the
/// insertion levels.  Either way the trajectory must match `Rebuild` bit
/// for bit on every family.
#[test]
fn zero_drift_threshold_is_bit_identical_to_rebuild_on_every_family() {
    for scenario in scenario_registry().iter() {
        let rebuild =
            run_policy(scenario.name(), 128, 2, 3, OptLevel::Redistribute, 11, TreePolicy::Rebuild);
        let reuse0 = run_policy(
            scenario.name(),
            128,
            2,
            3,
            OptLevel::Redistribute,
            11,
            TreePolicy::Reuse { rebuild_every: usize::MAX, drift_threshold: 0.0 },
        );
        assert_bit_identical(&rebuild, &reuse0, scenario.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized corners of the same pins: scenario family × insertion-level
    /// opt × machine shape × seed, `Reuse { rebuild_every: 1 }` and
    /// `drift_threshold: 0` both bit-for-bit against `Rebuild`.
    #[test]
    fn reuse_degenerate_policies_match_rebuild(
        family_idx in 0usize..6,
        opt_idx in 0usize..2,
        ranks in 1usize..4,
        nbodies in 64usize..160,
        seed in 1u64..500,
    ) {
        let registry = scenario_registry();
        let names = registry.names();
        let scenario = names[family_idx % names.len()];
        let opt = [OptLevel::Redistribute, OptLevel::CacheLocalTree][opt_idx];
        let rebuild = run_policy(scenario, nbodies, ranks, 2, opt, seed, TreePolicy::Rebuild);
        for policy in [
            TreePolicy::Reuse { rebuild_every: 1, drift_threshold: 0.25 },
            TreePolicy::Reuse { rebuild_every: usize::MAX, drift_threshold: 0.0 },
        ] {
            let reused = run_policy(scenario, nbodies, ranks, 2, opt, seed, policy);
            prop_assert_eq!(rebuild.bodies.len(), reused.bodies.len());
            for (x, y) in rebuild.bodies.iter().zip(&reused.bodies) {
                prop_assert_eq!(x.pos.x.to_bits(), y.pos.x.to_bits(), "{} {:?}", scenario, policy);
                prop_assert_eq!(x.pos.y.to_bits(), y.pos.y.to_bits(), "{} {:?}", scenario, policy);
                prop_assert_eq!(x.pos.z.to_bits(), y.pos.z.to_bits(), "{} {:?}", scenario, policy);
            }
        }
    }
}

/// The pinned long-run accuracy bound: a 16-step Plummer trajectory on the
/// incremental path (rebuilding only every 4th step) must keep its final
/// accelerations within a few percent of exact direct summation — the
/// reused tree's summaries are exact by construction, so only the bounded
/// spatial staleness of the cell partition may cost accuracy.
#[test]
fn incremental_path_holds_acceleration_error_on_a_long_plummer_run() {
    let policy = TreePolicy::Reuse { rebuild_every: 4, drift_threshold: 0.35 };
    let result = run_policy("plummer", 384, 3, 16, OptLevel::CacheLocalTree, 42, policy);
    assert_eq!(result.bodies.len(), 384);
    assert!(result.bodies.iter().all(|b| b.pos.is_finite() && b.vel.is_finite()));

    // The stored accelerations belong to the positions *before* the final
    // advance; roll the positions back one kick to rebuild the reference.
    let dt = scenario_registry().get("plummer").unwrap().recommended_config().dt;
    let rolled_back: Vec<Body> = result
        .bodies
        .iter()
        .map(|b| {
            let mut prev = *b;
            prev.pos -= prev.vel * dt;
            prev
        })
        .collect();
    let eps = scenario_registry().get("plummer").unwrap().recommended_config().eps;
    let reference = nbody::direct::compute_forces(&rolled_back, eps);
    let mean_err = result
        .bodies
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a.acc - b.acc).norm() / b.acc.norm().max(1e-12))
        .sum::<f64>()
        / result.bodies.len() as f64;
    assert!(mean_err < 0.06, "incremental-path acceleration error too large: {mean_err}");
}

/// The point of the subsystem: on a long trajectory, reusing the tree must
/// beat rebuilding it every step on the tree-building work.  In CI mode the
/// assertion uses the deterministic lock counter (per-step global insertion
/// re-acquires a lock per body, the incremental path only locks for the
/// drifted ones); locally the simulated phase times are asserted as well.
#[test]
fn reuse_beats_per_step_rebuild_on_long_trajectories() {
    for scenario in ["plummer", "king"] {
        let rebuild =
            run_policy(scenario, 1024, 2, 8, OptLevel::CacheLocalTree, 3, TreePolicy::Rebuild);
        let reuse = run_policy(
            scenario,
            1024,
            2,
            8,
            OptLevel::CacheLocalTree,
            3,
            TreePolicy::Reuse {
                rebuild_every: TreePolicy::DEFAULT_REBUILD_EVERY,
                drift_threshold: TreePolicy::DEFAULT_DRIFT_THRESHOLD,
            },
        );
        let locks = |r: &SimResult| r.total_stats().lock_acquires;
        assert!(
            locks(&reuse) < locks(&rebuild) / 2,
            "{scenario}: the incremental path must lock far less than per-step global insertion \
             ({} vs {})",
            locks(&reuse),
            locks(&rebuild)
        );
        if !common::deterministic_counters_mode() {
            let tree = |r: &SimResult| r.phases.tree + r.phases.cofm;
            assert!(
                tree(&reuse) < tree(&rebuild),
                "{scenario}: reuse must beat rebuild on simulated tree-building time \
                 ({} vs {})",
                tree(&reuse),
                tree(&rebuild)
            );
        }
    }
}

/// The validation bugfix: a library caller whose measurement window can
/// never start must get an error, not a silently garbage phase table.
#[test]
#[should_panic(expected = "measured_steps")]
fn upc_solver_rejects_a_never_starting_measurement_window() {
    let mut cfg = SimConfig::test(64, 2, OptLevel::Subspace);
    cfg.measured_steps = cfg.steps + 1;
    let _ = run_simulation(&cfg);
}

/// Same guard on the direct-summation reference.
#[test]
#[should_panic(expected = "measured_steps")]
fn direct_solver_rejects_a_never_starting_measurement_window() {
    let mut cfg = SimConfig::test(64, 2, OptLevel::Subspace);
    cfg.measured_steps = cfg.steps + 1;
    let bodies = generate(&PlummerConfig::new(cfg.nbodies, cfg.seed));
    let _ = engine::direct::run_simulation_on(&cfg, bodies);
}

/// Same guard on the message-passing comparator, which additionally rejects
/// reuse policies up front through `Backend::supports`.
#[test]
fn mpi_backend_guards_validation_and_tree_policy() {
    let backends = backend_registry();
    let mpi = backends.get("mpi").unwrap();

    let mut bad_window = SimConfig::test(64, 2, OptLevel::Subspace);
    bad_window.measured_steps = bad_window.steps + 1;
    assert!(mpi.supports(&bad_window).unwrap_err().contains("measured_steps"));

    let mut reuse = SimConfig::test(64, 2, OptLevel::Subspace);
    reuse.tree_policy = TreePolicy::Adaptive;
    assert!(mpi.supports(&reuse).unwrap_err().contains("not supported"));
    // The comparison driver surfaces the same error before running anything.
    let bodies = generate(&PlummerConfig::new(reuse.nbodies, reuse.seed));
    let err = engine::run_backends(&backends, &["mpi".to_string()], &reuse, &bodies).unwrap_err();
    assert!(err.contains("cannot run this config"), "{err}");

    // The upc and direct backends accept the same configuration.
    assert!(backends.get("upc").unwrap().supports(&reuse).is_ok());
    assert!(backends.get("direct").unwrap().supports(&reuse).is_ok());
}
