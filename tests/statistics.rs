//! Integration tests for the side statistics the paper reports in prose.

use barnes_hut_upc::prelude::*;
use pgas::Machine;

mod common;
use common::deterministic_counters_mode;

#[test]
fn body_migration_per_step_is_a_small_fraction() {
    // §5.2: "about 2% of the bodies allocated to a thread migrate during a
    // time-step".  After the warm-up steps have let the partition settle, the
    // per-step migration fraction must be small.
    let mut cfg = SimConfig::new(1_500, Machine::process_per_node(8), OptLevel::CacheLocalTree);
    cfg.steps = 4;
    cfg.measured_steps = 2;
    let result = bh::run_simulation(&cfg);
    assert!(
        result.migration_fraction < 0.10,
        "migration fraction {:.3} should be a few percent once the partition has settled",
        result.migration_fraction
    );
    assert!(result.migration_fraction > 0.0, "some bodies should still migrate");
}

#[test]
fn aggregated_requests_are_mostly_single_source_after_partitioning() {
    // §5.5: with 32 threads more than 95% of the aggregated requests have a
    // single source thread; the effect is driven by the spatial locality of
    // the partition and grows with the number of bodies per thread (the
    // paper runs 62K bodies/thread).  The scaled-down run must show a clear
    // majority, and the fraction must improve as bodies per rank grow.
    let run = |nbodies: usize| {
        let mut cfg = SimConfig::new(nbodies, Machine::process_per_node(4), OptLevel::Subspace);
        cfg.steps = 3;
        cfg.measured_steps = 1;
        bh::run_simulation(&cfg)
            .vlist_single_source_fraction()
            .expect("the async engine must have issued aggregated requests")
    };
    let small = run(2_000);
    let large = run(8_000);
    assert!(
        large > 0.6,
        "single-source fraction {large:.2} should be a clear majority after partitioning"
    );
    assert!(
        large > small,
        "locality must improve with bodies per rank (got {small:.2} -> {large:.2})"
    );
}

#[test]
fn per_rank_tree_build_split_shows_merge_imbalance() {
    // Figure 8: with the §5.4 merged tree build, the local-build sub-phase is
    // well balanced across ranks while the merge sub-phase is not.
    let mut cfg = SimConfig::new(1_200, Machine::process_per_node(8), OptLevel::MergedTreeBuild);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    let result = bh::run_simulation(&cfg);
    let local: Vec<f64> = result.ranks.iter().map(|r| r.tree_local).collect();
    let merge: Vec<f64> = result.ranks.iter().map(|r| r.tree_merge).collect();
    let spread = |v: &[f64]| {
        let max = v.iter().copied().fold(0.0, f64::max);
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        if max == 0.0 {
            0.0
        } else {
            (max - min) / max
        }
    };
    assert!(local.iter().all(|&t| t > 0.0), "every rank builds a local tree");
    assert!(merge.iter().any(|&t| t > 0.0), "someone must pay for merging");
    assert!(
        spread(&merge) > spread(&local),
        "merge time (spread {:.2}) should be less balanced than local build time (spread {:.2})",
        spread(&merge),
        spread(&local)
    );
}

#[test]
fn subspace_tree_build_is_better_balanced_than_merged() {
    // §6's point: the subspace algorithm removes the merge imbalance.
    let run = |opt| {
        let mut cfg = SimConfig::new(1_200, Machine::process_per_node(8), opt);
        cfg.steps = 2;
        cfg.measured_steps = 1;
        bh::run_simulation(&cfg)
    };
    let merged = run(OptLevel::MergedTreeBuild);
    let subspace = run(OptLevel::Subspace);
    // The counter form (deterministic): the busiest rank performs fewer
    // elementary tree operations under the subspace build than under the
    // merged build, whose root-ward merge concentrates work on one rank
    // (observed ~6000 vs ~3300 on this workload).
    let max_ops = |r: &SimResult| r.ranks.iter().map(|o| o.stats.tree_ops).max().unwrap();
    assert!(
        max_ops(&subspace) < max_ops(&merged),
        "the subspace build must spread tree operations (busiest rank {} vs {})",
        max_ops(&subspace),
        max_ops(&merged)
    );
    if deterministic_counters_mode() {
        return;
    }
    // The timing form carries merge-race noise and is skipped in CI.
    let max_tree = |r: &SimResult| r.ranks.iter().map(|o| o.phases.tree).fold(0.0, f64::max);
    assert!(
        max_tree(&subspace) < max_tree(&merged),
        "subspace tree building ({:.4}s) should beat merged tree building ({:.4}s) at scale",
        max_tree(&subspace),
        max_tree(&merged)
    );
}

#[test]
fn intranode_process_mode_is_catastrophic() {
    // §4.1: 16 UPC processes on one node were >1000x slower than 16 pthreads
    // on one node for the baseline.  Reproduce the direction (not the exact
    // factor) at a small scale.
    let mut processes = SimConfig::new(300, Machine::power5(1, 8, false), OptLevel::Baseline);
    processes.steps = 2;
    processes.measured_steps = 1;
    let mut pthreads = processes.clone();
    pthreads.machine = Machine::power5(1, 8, true);
    let proc_result = bh::run_simulation(&processes);
    let pth_result = bh::run_simulation(&pthreads);
    assert!(
        proc_result.total > 3.0 * pth_result.total,
        "process-per-core on one node ({:.2}s) should be far slower than pthreads ({:.2}s)",
        proc_result.total,
        pth_result.total
    );
}

#[test]
fn phase_breakdown_percentages_sum_to_one_hundred() {
    let cfg = SimConfig::test(300, 4, OptLevel::AsyncAggregation);
    let result = bh::run_simulation(&cfg);
    let sum: f64 = Phase::ALL.iter().map(|&p| result.phases.percent(p)).sum();
    assert!((sum - 100.0).abs() < 1e-6, "phase percentages must sum to 100, got {sum}");
}
