//! Equivalence tests for the leaf-coalesced (SoA-batched) force kernel.
//!
//! The batched walk (`CacheTree::walk`) gathers each opened cell's body
//! leaves into contiguous position/mass arrays and streams them; the
//! retained per-body walk (`CacheTree::walk_per_body`) reads one node record
//! per leaf.  Because both evaluate the identical floating-point expression
//! in the identical order, they must agree **bit for bit** — on every
//! scenario family, every machine shape and every θ.  The interaction
//! counts they charge must also be identical (the deterministic counter the
//! bench baseline gates on), pinned here for a fixed configuration.

use barnes_hut_upc::prelude::*;
use bh::cache::CacheTree;
use bh::shadow::ShadowCacheTree;
use bh::shared::{BhShared, RankState};
use bh::treebuild::{allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies};
use proptest::prelude::*;

/// Builds the shared tree over `bodies` and, on every rank, walks every
/// owned body with both kernels, returning
/// `(id, batched, per_body, shadow_batched)` triples of raw results.
#[allow(clippy::type_complexity)]
fn walk_both(
    cfg: &SimConfig,
    bodies: Vec<Body>,
    theta: f64,
) -> Vec<(u32, (Vec3, f64, u32), (Vec3, f64, u32), (Vec3, f64, u32))> {
    let shared = BhShared::with_bodies(cfg, bodies);
    let rt = Runtime::new(cfg.machine.clone());
    let shared_ref = &shared;
    let report = rt.run(|ctx| {
        let mut st = RankState::new(ctx, shared_ref, cfg);
        let (center, rsize) = bounding_box_phase(ctx, shared_ref, &mut st, cfg);
        allocate_root(ctx, shared_ref, center, rsize);
        ctx.barrier();
        insert_owned_bodies(ctx, shared_ref, &mut st, cfg);
        ctx.barrier();
        center_of_mass_phase(ctx, shared_ref, &mut st, cfg);
        ctx.barrier();
        let mut batched = CacheTree::new(ctx, shared_ref);
        let mut per_body = CacheTree::new(ctx, shared_ref);
        let mut shadow = ShadowCacheTree::new(ctx, shared_ref);
        st.my_ids
            .iter()
            .map(|&id| {
                let pos = shared_ref.bodytab.read_raw(id as usize).pos;
                let a = batched.walk(ctx, shared_ref, pos, id, theta, cfg.eps);
                let b = per_body.walk_per_body(ctx, shared_ref, pos, id, theta, cfg.eps);
                let s = shadow.walk(ctx, shared_ref, pos, id, theta, cfg.eps);
                (
                    id,
                    (a.acc, a.phi, a.interactions),
                    (b.acc, b.phi, b.interactions),
                    (s.acc, s.phi, s.interactions),
                )
            })
            .collect::<Vec<_>>()
    });
    report.ranks.into_iter().flat_map(|r| r.result).collect()
}

#[test]
fn batched_walk_is_bit_identical_on_every_scenario_family() {
    for scenario in scenario_registry().iter() {
        let mut cfg = SimConfig::test(256, 3, OptLevel::CacheLocalTree);
        let tuning = scenario.recommended_config();
        cfg.theta = tuning.theta;
        cfg.eps = tuning.eps;
        let bodies = scenario.generate(cfg.nbodies, cfg.seed);
        let results = walk_both(&cfg, bodies, cfg.theta);
        assert_eq!(results.len(), 256, "{}", scenario.name());
        for (id, batched, per_body, shadow) in results {
            assert_eq!(
                batched,
                per_body,
                "{}: batched and per-body walks diverged on body {id}",
                scenario.name()
            );
            assert_eq!(
                batched,
                shadow,
                "{}: batched and shadow walks diverged on body {id}",
                scenario.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property: for arbitrary workload seeds, sizes, rank counts and
    /// opening angles, the SoA-batched accelerations match the per-body
    /// walk bit for bit.
    #[test]
    fn batched_walk_matches_per_body_walk_bit_for_bit(
        seed in 0u64..1_000_000,
        nbodies in 16usize..220,
        ranks in 1usize..4,
        theta in 0.3f64..1.4,
        family in 0usize..6,
    ) {
        let registry = scenario_registry();
        let names = registry.names();
        let scenario = registry.get(names[family % names.len()]).unwrap();
        let mut cfg = SimConfig::test(nbodies, ranks, OptLevel::CacheLocalTree);
        cfg.seed = seed;
        let bodies = scenario.generate(nbodies, seed);
        for (id, batched, per_body, shadow) in walk_both(&cfg, bodies, theta) {
            prop_assert_eq!(batched, per_body, "body {} diverged", id);
            prop_assert_eq!(batched, shadow, "shadow walk diverged on body {}", id);
        }
    }
}

#[test]
fn interaction_counts_are_pinned_for_the_reference_configuration() {
    // One rank builds the tree by sequential insertion, so the count is a
    // deterministic function of (workload, seed, theta) — a drift here
    // means a kernel change altered *what* is evaluated, not just how
    // fast.  The pinned value was recorded when the leaf-coalesced kernel
    // landed; both engines charged it then and must keep charging it.
    let cfg = SimConfig::test(200, 1, OptLevel::CacheLocalTree);
    let bodies = generate(&PlummerConfig::new(cfg.nbodies, cfg.seed));
    let results = walk_both(&cfg, bodies, cfg.theta);
    let total_batched: u64 = results.iter().map(|(_, a, _, _)| a.2 as u64).sum();
    let total_per_body: u64 = results.iter().map(|(_, _, b, _)| b.2 as u64).sum();
    assert_eq!(total_batched, total_per_body, "the two kernels must charge identical counts");
    assert_eq!(
        total_batched, PINNED_INTERACTIONS,
        "interaction count drifted from the pinned reference"
    );
}

/// Total interactions of the 200-body Plummer reference walk (seed 1234567,
/// θ = 1, one rank).  See
/// [`interaction_counts_are_pinned_for_the_reference_configuration`].
const PINNED_INTERACTIONS: u64 = 14_846;
