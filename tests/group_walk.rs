//! Integration tests of the group-walk traversal mode: the conservative
//! group criterion must never make per-body accuracy worse (with fresh
//! lists it reproduces the per-body walk bit for bit), the mode must stay
//! physically accurate when combined with persistent-tree stepping, the
//! per-body mode must remain exactly the walk it was before the knob
//! existed, and the walk amortization must actually show up in the
//! deterministic traversal counters.

mod common;

use barnes_hut_upc::prelude::*;
use common::deterministic_counters_mode;

/// Runs one scenario through the `upc` solver under `(policy, walk)` and
/// returns the final states, phase times and traffic counters.
#[allow(clippy::too_many_arguments)]
fn run_walk(
    scenario: &str,
    nbodies: usize,
    ranks: usize,
    steps: usize,
    opt: OptLevel,
    seed: u64,
    policy: TreePolicy,
    walk: WalkMode,
) -> SimResult {
    let registry = scenario_registry();
    let family = registry.get(scenario).expect("scenario registered");
    let tuning = family.recommended_config();
    let mut cfg = SimConfig::new(nbodies, Machine::test_cluster(ranks), opt);
    cfg.steps = steps;
    cfg.measured_steps = steps.div_ceil(2);
    cfg.seed = seed;
    cfg.theta = tuning.theta;
    cfg.eps = tuning.eps;
    cfg.dt = tuning.dt;
    cfg.tree_policy = policy;
    cfg.walk = walk;
    run_simulation_on(&cfg, family.generate(nbodies, seed))
}

/// Asserts two trajectories are bit-for-bit identical.
fn assert_bit_identical(a: &SimResult, b: &SimResult, label: &str) {
    assert_eq!(a.bodies.len(), b.bodies.len(), "{label}");
    for (x, y) in a.bodies.iter().zip(&b.bodies) {
        assert_eq!(x.id, y.id, "{label}");
        for (p, q) in [(x.pos, y.pos), (x.vel, y.vel), (x.acc, y.acc)] {
            assert_eq!(p.x.to_bits(), q.x.to_bits(), "{label}: body {}", x.id);
            assert_eq!(p.y.to_bits(), q.y.to_bits(), "{label}: body {}", x.id);
            assert_eq!(p.z.to_bits(), q.z.to_bits(), "{label}: body {}", x.id);
        }
    }
}

/// Mean relative acceleration error against the direct-summation backend.
fn mean_error_vs_direct(result: &SimResult, direct: &SimResult) -> f64 {
    result
        .bodies
        .iter()
        .zip(&direct.bodies)
        .map(|(a, b)| (a.acc - b.acc).norm() / b.acc.norm().max(1e-12))
        .sum::<f64>()
        / result.bodies.len() as f64
}

/// With per-step rebuild (fresh lists every step), the group walk's
/// member-level decisions reproduce the per-body criterion exactly, so the
/// whole trajectory must be bit-for-bit the per-body trajectory — on every
/// scenario family.  This is simultaneously the strongest possible form of
/// "group-walk acceleration error vs direct is ≤ the per-body walk's error
/// on every scenario family" (the two errors are equal) and the pin that
/// `WalkMode::PerBody` remains the walk the group mode amortizes.
#[test]
fn group_walk_is_bit_identical_to_per_body_under_rebuild_on_every_family() {
    for scenario in scenario_registry().iter() {
        let per_body = run_walk(
            scenario.name(),
            160,
            3,
            3,
            OptLevel::CacheLocalTree,
            7,
            TreePolicy::Rebuild,
            WalkMode::PerBody,
        );
        let group = run_walk(
            scenario.name(),
            160,
            3,
            3,
            OptLevel::CacheLocalTree,
            7,
            TreePolicy::Rebuild,
            WalkMode::Group,
        );
        assert_bit_identical(&per_body, &group, scenario.name());
    }
}

/// The same equivalence through the §5.3.2 shadow cache and at the merged
/// tree-build level: the group walk composes with both cache flavours and
/// every caching rung below §5.5.
#[test]
fn group_walk_matches_per_body_through_the_shadow_cache() {
    let registry = scenario_registry();
    let family = registry.get("king").expect("king registered");
    let tuning = family.recommended_config();
    for opt in [OptLevel::CacheLocalTree, OptLevel::MergedTreeBuild] {
        let mut cfg = SimConfig::new(192, Machine::test_cluster(2), opt);
        cfg.steps = 2;
        cfg.measured_steps = 1;
        cfg.theta = tuning.theta;
        cfg.eps = tuning.eps;
        cfg.dt = tuning.dt;
        cfg.shadow_cache = true;
        cfg.walk = WalkMode::PerBody;
        let per_body = run_simulation_on(&cfg, family.generate(cfg.nbodies, cfg.seed));
        cfg.walk = WalkMode::Group;
        let group = run_simulation_on(&cfg, family.generate(cfg.nbodies, cfg.seed));
        assert_bit_identical(&per_body, &group, "shadow-cache group walk");
    }
}

/// Group-walk error vs the direct reference must be bounded by (a small
/// slack over) the per-body walk's error on every scenario family — also
/// when the tree is reused across steps, where cached interaction lists
/// freeze their group-level decisions for a few steps.
#[test]
fn group_walk_error_is_never_worse_than_per_body_on_every_family() {
    for scenario in scenario_registry().iter() {
        for policy in
            [TreePolicy::Rebuild, TreePolicy::Reuse { rebuild_every: 8, drift_threshold: 0.25 }]
        {
            let steps = 4;
            let per_body = run_walk(
                scenario.name(),
                192,
                2,
                steps,
                OptLevel::CacheLocalTree,
                13,
                policy,
                WalkMode::PerBody,
            );
            let group = run_walk(
                scenario.name(),
                192,
                2,
                steps,
                OptLevel::CacheLocalTree,
                13,
                policy,
                WalkMode::Group,
            );
            let registry = scenario_registry();
            let family = registry.get(scenario.name()).unwrap();
            let tuning = family.recommended_config();
            let mut dcfg = SimConfig::new(192, Machine::test_cluster(2), OptLevel::CacheLocalTree);
            dcfg.steps = steps;
            dcfg.measured_steps = steps / 2;
            dcfg.seed = 13;
            dcfg.theta = tuning.theta;
            dcfg.eps = tuning.eps;
            dcfg.dt = tuning.dt;
            let backends = backend_registry();
            let direct = backends
                .get("direct")
                .unwrap()
                .run(&dcfg, family.generate(dcfg.nbodies, dcfg.seed));
            let err_per_body = mean_error_vs_direct(&per_body, &direct);
            let err_group = mean_error_vs_direct(&group, &direct);
            // Under per-step rebuild every list is fresh and the group walk
            // *is* the per-body walk (the bit-identical test above); under
            // reuse, lists may be applied one step after they were built
            // (`bh::groupwalk::MAX_LIST_AGE`), freezing their acceptance
            // decisions for that step — a bounded approximation whose worst
            // case (coherently rotating disks) stays within half again the
            // per-body error and far inside physical tolerance.
            let slack = if policy.reuses_tree() { 1.6 } else { 1.0 };
            assert!(
                err_group <= err_per_body * slack + 1e-10,
                "{} [{}]: group error {err_group} vs per-body {err_per_body}",
                scenario.name(),
                policy.name()
            );
            assert!(err_group < 0.1, "{}: absolute group error {err_group}", scenario.name());
        }
    }
}

/// A steps=16 trajectory with group walks *and* tree reuse enabled together
/// must stay close to the direct reference: the cached interaction lists,
/// the persistent tree and the incremental refolds compose without
/// accuracy collapse.
#[test]
fn long_group_walk_trajectory_with_tree_reuse_tracks_direct_summation() {
    for scenario in ["plummer", "king"] {
        let group = run_walk(
            scenario,
            256,
            2,
            16,
            OptLevel::CacheLocalTree,
            5,
            TreePolicy::Reuse { rebuild_every: 8, drift_threshold: 0.25 },
            WalkMode::Group,
        );
        let registry = scenario_registry();
        let family = registry.get(scenario).unwrap();
        let tuning = family.recommended_config();
        let mut dcfg = SimConfig::new(256, Machine::test_cluster(2), OptLevel::CacheLocalTree);
        dcfg.steps = 16;
        dcfg.measured_steps = 8;
        dcfg.seed = 5;
        dcfg.theta = tuning.theta;
        dcfg.eps = tuning.eps;
        dcfg.dt = tuning.dt;
        let backends = backend_registry();
        let direct =
            backends.get("direct").unwrap().run(&dcfg, family.generate(dcfg.nbodies, dcfg.seed));
        let err = mean_error_vs_direct(&group, &direct);
        assert!(
            err < 0.12,
            "{scenario}: steps=16 group+reuse trajectory drifted {err} from direct summation"
        );
        assert!(group.bodies.iter().all(|b| b.pos.is_finite() && b.vel.is_finite()), "{scenario}");
    }
}

/// Strict reuse (`drift_threshold: 0`) promises bit-for-bit equivalence
/// with per-step rebuild; the group walk honours it by rebuilding its lists
/// from the (bit-identical) tree every step.
#[test]
fn strict_reuse_group_walk_is_bit_identical_to_rebuild_group_walk() {
    let rebuild = run_walk(
        "plummer",
        144,
        2,
        3,
        OptLevel::CacheLocalTree,
        23,
        TreePolicy::Rebuild,
        WalkMode::Group,
    );
    let strict = run_walk(
        "plummer",
        144,
        2,
        3,
        OptLevel::CacheLocalTree,
        23,
        TreePolicy::Reuse { rebuild_every: usize::MAX, drift_threshold: 0.0 },
        WalkMode::Group,
    );
    assert_bit_identical(&rebuild, &strict, "strict-reuse group walk");
    // Counter-for-counter comparability: strict mode neither pads group
    // boxes nor snapshots sites, so its traversal volume matches the
    // rebuild walk's exactly.
    assert_eq!(rebuild.total_stats().macs, strict.total_stats().macs);
}

/// The §5.5 group engine: same physics as the blocking group walk (both
/// reproduce the per-body criterion), with aggregated non-blocking gathers.
#[test]
fn async_group_engine_matches_blocking_group_walk() {
    let cached = run_walk(
        "plummer",
        240,
        4,
        2,
        OptLevel::CacheLocalTree,
        3,
        TreePolicy::Rebuild,
        WalkMode::Group,
    );
    let async_group = run_walk(
        "plummer",
        240,
        4,
        2,
        OptLevel::AsyncAggregation,
        3,
        TreePolicy::Rebuild,
        WalkMode::Group,
    );
    for (a, b) in async_group.bodies.iter().zip(&cached.bodies) {
        let err = (a.acc - b.acc).norm() / b.acc.norm().max(1e-12);
        assert!(err < 1e-9, "async group engine changed the physics (err {err})");
    }
}

/// The walk amortization claim on deterministic counters: the group walk
/// must cut the multipole-acceptance count well below the per-body walk's
/// on the same workload, with and without tree reuse, while evaluating the
/// same interactions (rebuild: exactly; reuse: up to frozen-list drift).
/// In CI the counters are asserted alone; locally the simulated
/// force-phase time must drop too.
#[test]
fn group_walk_amortizes_the_traversal_counters() {
    for policy in
        [TreePolicy::Rebuild, TreePolicy::Reuse { rebuild_every: 8, drift_threshold: 0.25 }]
    {
        let per_body =
            run_walk("plummer", 1024, 2, 6, OptLevel::CacheLocalTree, 9, policy, WalkMode::PerBody);
        let group =
            run_walk("plummer", 1024, 2, 6, OptLevel::CacheLocalTree, 9, policy, WalkMode::Group);
        let macs_per_body = per_body.total_stats().macs;
        let macs_group = group.total_stats().macs;
        assert!(
            (macs_group as f64) < 0.75 * macs_per_body as f64,
            "[{}] group macs {macs_group} vs per-body {macs_per_body}",
            policy.name()
        );
        if matches!(policy, TreePolicy::Rebuild) {
            assert_eq!(
                per_body.total_stats().interactions,
                group.total_stats().interactions,
                "fresh lists must evaluate exactly the per-body interactions"
            );
        }
        if !deterministic_counters_mode() {
            assert!(
                group.phases.force < per_body.phases.force,
                "[{}] group force time {} vs per-body {}",
                policy.name(),
                group.phases.force,
                per_body.phases.force
            );
        }
    }
}

/// The walk knob is validated, not silently substituted: the group walk
/// needs a cell cache (`upc` below §5.3 rejects it) and the
/// message-passing comparator has no group walk at all.
#[test]
fn group_walk_support_is_checked_per_backend() {
    let backends = backend_registry();
    let mut cfg = SimConfig::test(64, 2, OptLevel::Redistribute);
    cfg.walk = WalkMode::Group;
    let err = backends.get("upc").unwrap().supports(&cfg).unwrap_err();
    assert!(err.contains("cache"), "{err}");

    let mut cfg = SimConfig::test(64, 2, OptLevel::Subspace);
    cfg.walk = WalkMode::Group;
    let err = backends.get("mpi").unwrap().supports(&cfg).unwrap_err();
    assert!(err.contains("not supported"), "{err}");
    assert!(backends.get("upc").unwrap().supports(&cfg).is_ok());
    assert!(
        backends.get("direct").unwrap().supports(&cfg).is_ok(),
        "direct summation has no tree and ignores the walk mode"
    );
}
