//! Integration tests for the *performance shape* of the optimization ladder.
//!
//! The paper's headline claims, re-checked here on scaled-down workloads in
//! simulated time:
//!
//! * the naive baseline gets dramatically slower when ranks are added
//!   (Table 2),
//! * replicating scalars, redistributing bodies and caching cells each cut
//!   the relevant phases (Tables 3–5),
//! * the merged tree build cuts tree-building time (Table 6),
//! * non-blocking aggregation cuts the force phase further at scale
//!   (Table 7),
//! * the fully optimized code *speeds up* with ranks instead of slowing down
//!   (Figure 13), and the cumulative improvement over the baseline is large
//!   (Figure 5).

use barnes_hut_upc::prelude::*;
use pgas::Machine;

mod common;
use common::deterministic_counters_mode;

const NBODIES: usize = 400;

fn run(opt: OptLevel, ranks: usize, nbodies: usize) -> SimResult {
    let mut cfg = SimConfig::new(nbodies, Machine::process_per_node(ranks), opt);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    bh::run_simulation(&cfg)
}

#[test]
fn baseline_slows_down_with_more_ranks() {
    let single = run(OptLevel::Baseline, 1, NBODIES);
    let eight = run(OptLevel::Baseline, 8, NBODIES);
    if deterministic_counters_mode() {
        // The mechanism behind the slowdown, in deterministic counters: one
        // rank touches everything locally, eight ranks turn the same work
        // into a flood of fine-grained remote operations.
        let single_remote = single.total_stats().remote_ops();
        let eight_remote = eight.total_stats().remote_ops();
        assert_eq!(single_remote, 0, "one rank must not perform remote operations");
        assert!(
            eight_remote as usize > 100 * NBODIES,
            "the baseline on 8 ranks must drown in fine-grained remote ops (got {eight_remote})"
        );
        return;
    }
    assert!(
        eight.total > single.total,
        "the naive baseline must be slower on 8 ranks ({:.3}s) than on 1 ({:.3}s)",
        eight.total,
        single.total
    );
}

#[test]
fn replicating_scalars_cuts_baseline_force_time() {
    let baseline = run(OptLevel::Baseline, 8, NBODIES);
    let replicated = run(OptLevel::ReplicateScalars, 8, NBODIES);
    if deterministic_counters_mode() {
        // Table 3's mechanism in counters: replication removes the remote
        // tol/eps reads the force walk performs per interaction (observed
        // ~450k -> ~310k remote gets on this workload), and changes no
        // physics (identical interaction counts).
        let base_gets = baseline.total_stats().remote_gets;
        let repl_gets = replicated.total_stats().remote_gets;
        assert!(
            base_gets as f64 > 1.2 * repl_gets as f64,
            "replicating scalars must remove remote scalar reads ({base_gets} vs {repl_gets})"
        );
        assert_eq!(
            baseline.total_stats().interactions,
            replicated.total_stats().interactions,
            "replication must not change what is evaluated"
        );
        return;
    }
    assert!(
        replicated.phases.force < 0.7 * baseline.phases.force,
        "replicating tol/eps should cut the force phase substantially ({:.3}s -> {:.3}s)",
        baseline.phases.force,
        replicated.phases.force
    );
    // Both levels build the tree by global insertion under locks, whose
    // simulated cost depends on the real thread interleaving (lock retries),
    // so the tree-phase comparison carries scheduling noise in both
    // directions.  Replication must not make tree building *much* worse;
    // the deterministic headline claim of Table 3 is the force-phase cut
    // asserted above.
    assert!(
        replicated.phases.tree < 1.25 * baseline.phases.tree,
        "replicating scalars should not inflate tree building ({:.4}s -> {:.4}s)",
        baseline.phases.tree,
        replicated.phases.tree
    );
}

#[test]
fn redistribution_eliminates_cofm_and_advance_costs() {
    let replicated = run(OptLevel::ReplicateScalars, 8, NBODIES);
    let redistributed = run(OptLevel::Redistribute, 8, NBODIES);
    assert!(
        redistributed.phases.cofm < 0.5 * replicated.phases.cofm,
        "redistribution should nearly eliminate the centre-of-mass phase ({:.4}s -> {:.4}s)",
        replicated.phases.cofm,
        redistributed.phases.cofm
    );
    assert!(
        redistributed.phases.advance < 0.5 * replicated.phases.advance,
        "redistribution should nearly eliminate body advancement ({:.4}s -> {:.4}s)",
        replicated.phases.advance,
        redistributed.phases.advance
    );
}

#[test]
fn caching_cells_slashes_force_time() {
    let uncached = run(OptLevel::Redistribute, 8, NBODIES);
    let cached = run(OptLevel::CacheLocalTree, 8, NBODIES);
    if deterministic_counters_mode() {
        // The 99% force-time cut of Table 5 is a traffic cut: every remote
        // cell is fetched once per rank per step instead of once per visit
        // (observed ~300k -> ~11k remote gets on this workload).
        let uncached_gets = uncached.total_stats().remote_gets;
        let cached_gets = cached.total_stats().remote_gets;
        assert!(
            (cached_gets as f64) < 0.2 * uncached_gets as f64,
            "demand-driven caching must slash remote reads ({uncached_gets} -> {cached_gets})"
        );
        return;
    }
    assert!(
        cached.phases.force < 0.15 * uncached.phases.force,
        "demand-driven caching should cut force time by an order of magnitude ({:.3}s -> {:.3}s)",
        uncached.phases.force,
        cached.phases.force
    );
}

#[test]
fn merged_tree_build_cuts_tree_time() {
    let locked = run(OptLevel::CacheLocalTree, 8, NBODIES);
    let merged = run(OptLevel::MergedTreeBuild, 8, NBODIES);
    if deterministic_counters_mode() {
        // §5.4's mechanism: local trees are built without global locks, so
        // the lock traffic of the insertion-under-locks build disappears
        // (observed ~1250 -> ~500 acquisitions on this workload).
        let locked_locks = locked.total_stats().lock_acquires;
        let merged_locks = merged.total_stats().lock_acquires;
        assert!(
            merged_locks < locked_locks,
            "merged local trees must acquire fewer global locks ({locked_locks} -> {merged_locks})"
        );
        return;
    }
    let locked_build = locked.phases.tree + locked.phases.cofm;
    let merged_build = merged.phases.tree + merged.phases.cofm;
    assert!(
        merged_build < locked_build,
        "merged local trees should beat global insertion under locks ({locked_build:.3}s vs {merged_build:.3}s)"
    );
}

#[test]
fn async_aggregation_cuts_force_time_at_scale() {
    let blocking = run(OptLevel::MergedTreeBuild, 16, NBODIES);
    let asynchronous = run(OptLevel::AsyncAggregation, 16, NBODIES);
    if deterministic_counters_mode() {
        // §5.5's mechanism: cache misses are batched into aggregated vlist
        // gathers, so messages drop while the interactions are unchanged.
        let async_stats = asynchronous.total_stats();
        let blocking_stats = blocking.total_stats();
        assert!(async_stats.vlist_requests > 0, "the async engine must issue aggregated gathers");
        assert!(
            async_stats.messages < blocking_stats.messages,
            "aggregation must reduce bulk message count ({} vs {})",
            async_stats.messages,
            blocking_stats.messages
        );
        assert_eq!(async_stats.interactions, blocking_stats.interactions);
        return;
    }
    assert!(
        asynchronous.phases.force < blocking.phases.force,
        "aggregated non-blocking gathers should cut the force phase ({:.3}s -> {:.3}s)",
        blocking.phases.force,
        asynchronous.phases.force
    );
}

#[test]
fn optimized_code_speeds_up_with_ranks() {
    // Figure 13: the fully optimized code shows strong-scaling speed-up.
    let one = run(OptLevel::Subspace, 1, 600);
    let eight = run(OptLevel::Subspace, 8, 600);
    if deterministic_counters_mode() {
        // Strong scaling in counters: the costzones partitioner spreads the
        // interaction work, so the busiest of 8 ranks carries a small
        // fraction of the single rank's load (observed ~6x less).
        let max_inter = |r: &SimResult| r.ranks.iter().map(|o| o.stats.interactions).max().unwrap();
        let m1 = max_inter(&one);
        let m8 = max_inter(&eight);
        assert!(
            (m8 as f64) < 0.5 * m1 as f64,
            "8 ranks must spread the interaction work ({m1} -> busiest rank {m8})"
        );
        return;
    }
    let speedup = one.total / eight.total;
    // The exact factor depends on the Plummer sample (and therefore on the
    // RNG stream feeding the generator); on this workload it sits just below
    // 2x.  The claim under test is strong scaling — clearly faster on 8
    // ranks — not a particular constant.
    assert!(
        speedup > 1.6,
        "the optimized code should speed up with ranks (got {speedup:.2}x on 8 ranks)"
    );
}

#[test]
fn cumulative_improvement_over_baseline_is_large() {
    // Figure 5: the cumulative improvement at a non-trivial rank count is
    // orders of magnitude (the paper reports >1600x at 112 ranks on the full
    // problem; the scaled-down workload still shows a very large factor).
    let baseline = run(OptLevel::Baseline, 8, NBODIES);
    let optimized = run(OptLevel::Subspace, 8, NBODIES);
    if deterministic_counters_mode() {
        // The cumulative ladder in counters: identical physics (same
        // interaction count), two orders of magnitude less fine-grained
        // remote traffic (observed ~455k -> ~5k on this workload).
        let base = baseline.total_stats();
        let opt = optimized.total_stats();
        assert_eq!(base.interactions, opt.interactions, "the ladder must not change the physics");
        assert!(
            (opt.remote_ops() as f64) < base.remote_ops() as f64 / 30.0,
            "the full ladder must eliminate almost all remote traffic ({} -> {})",
            base.remote_ops(),
            opt.remote_ops()
        );
        return;
    }
    let improvement = baseline.total / optimized.total;
    assert!(
        improvement > 30.0,
        "cumulative optimizations should improve the total time by a large factor (got {improvement:.1}x)"
    );
}

#[test]
fn pthreads_runtime_is_slower_than_process_mode() {
    // Table 8 vs Table 9: one process per node beats one pthread per node.
    let mut cfg_proc = SimConfig::new(NBODIES, Machine::process_per_node(4), OptLevel::Subspace);
    cfg_proc.steps = 2;
    cfg_proc.measured_steps = 1;
    let mut cfg_pth = SimConfig::new(NBODIES, Machine::pthreads_per_node(4, 1), OptLevel::Subspace);
    cfg_pth.steps = 2;
    cfg_pth.measured_steps = 1;
    let proc = bh::run_simulation(&cfg_proc);
    let pth = bh::run_simulation(&cfg_pth);
    assert!(
        pth.total > 1.2 * proc.total,
        "the pthreads runtime overhead should show up ({:.3}s vs {:.3}s)",
        pth.total,
        proc.total
    );
}

#[test]
fn weak_scaling_tree_build_scales_with_vector_reduction() {
    // Figure 10 vs Figure 11: without vector reduction the subspace
    // construction cost explodes with rank count; with it, it stays modest.
    let ranks = 16;
    let mut with_vec =
        SimConfig::new(ranks * 40, Machine::process_per_node(ranks), OptLevel::Subspace);
    with_vec.steps = 2;
    with_vec.measured_steps = 1;
    let mut without_vec = with_vec.clone();
    without_vec.vector_reduction = false;
    let a = bh::run_simulation(&with_vec);
    let b = bh::run_simulation(&without_vec);
    assert!(
        b.phases.partition > 2.0 * a.phases.partition,
        "per-subspace scalar reductions should be much more expensive ({:.4}s vs {:.4}s)",
        b.phases.partition,
        a.phases.partition
    );
}
