//! Force-equivalence tests for the sorted (Morton sample-sort) tree build.
//!
//! The sorted build's contract is not "close enough": because it creates a
//! cell at exactly the regions the insertion build does, derives child
//! geometry through the same `child_geometry` arithmetic and folds summaries
//! in the same octant order, the tree it hands the force walk is
//! *bit-identical* to the insertion tree.  These tests pin that contract
//! end-to-end — final positions and velocities compared via `to_bits`, no
//! epsilon — across all six scenario families, both tree-reuse policies and
//! both force-walk modes.  The per-phase unit tests in `bh::sortbuild` pin
//! the same claim at the tree level (node-by-node field equality) and the
//! zero-lock property of the build phase.

use barnes_hut_upc::prelude::*;
use proptest::prelude::*;

/// Runs one configuration under both tree builds and asserts the final body
/// states are bit-for-bit identical.
fn assert_builds_agree_bitwise(
    family: &str,
    nbodies: usize,
    ranks: usize,
    seed: u64,
    opt: OptLevel,
    policy: TreePolicy,
    walk: WalkMode,
) {
    let scenario = scenarios::builtin();
    let scenario = scenario.get(family).expect("builtin family");
    let bodies = scenario.generate(nbodies, seed);

    let mut cfg = SimConfig::test(nbodies, ranks, opt);
    cfg.seed = seed;
    cfg.steps = 3;
    cfg.measured_steps = 1;
    cfg.tree_policy = policy;
    cfg.walk = walk;

    cfg.build = TreeBuild::Insertion;
    let insertion = bh::run_simulation_on(&cfg, bodies.clone());
    cfg.build = TreeBuild::Sorted;
    let sorted = bh::run_simulation_on(&cfg, bodies);

    assert_eq!(insertion.bodies.len(), sorted.bodies.len());
    for (a, b) in insertion.bodies.iter().zip(&sorted.bodies) {
        assert_eq!(a.id, b.id, "{family}: body order diverged");
        for (pa, pb, axis) in [
            (a.pos.x, b.pos.x, "pos.x"),
            (a.pos.y, b.pos.y, "pos.y"),
            (a.pos.z, b.pos.z, "pos.z"),
            (a.vel.x, b.vel.x, "vel.x"),
            (a.vel.y, b.vel.y, "vel.y"),
            (a.vel.z, b.vel.z, "vel.z"),
        ] {
            assert_eq!(
                pa.to_bits(),
                pb.to_bits(),
                "{family}/{}/{}/{} body {} {axis}: insertion {pa:e} vs sorted {pb:e}",
                opt.name(),
                policy.name(),
                walk.name(),
                a.id,
            );
        }
    }
    // The compact arena must also realize its headline claim wherever the
    // comparison is meaningful: strictly fewer peak node-arena bytes than
    // the fat insertion arena on the same workload.
    assert!(sorted.tree_bytes > 0, "{family}: sorted build must report tree_bytes");
    assert!(
        sorted.tree_bytes < insertion.tree_bytes,
        "{family}: compact arena ({} B) must undercut the fat arena ({} B)",
        sorted.tree_bytes,
        insertion.tree_bytes
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline property: sorted and insertion builds produce
    /// bit-for-bit identical trajectories on every scenario family, under
    /// per-step rebuild and under tree reuse, with either walk mode.
    #[test]
    fn sorted_build_is_bitwise_equivalent_across_families(
        family_idx in 0usize..6,
        nbodies in 96usize..288,
        ranks in 1usize..5,
        seed in 1u64..1_000,
        reuse in any::<bool>(),
        group_walk in any::<bool>(),
    ) {
        let policy = if reuse {
            TreePolicy::Reuse { rebuild_every: 2, drift_threshold: 0.25 }
        } else {
            TreePolicy::Rebuild
        };
        // The group walk needs a caching level; the per-body case also
        // exercises the lowest level the sorted build supports.
        let (opt, walk) = if group_walk {
            (OptLevel::CacheLocalTree, WalkMode::Group)
        } else {
            (OptLevel::Redistribute, WalkMode::PerBody)
        };
        assert_builds_agree_bitwise(
            scenarios::BUILTIN_NAMES[family_idx],
            nbodies,
            ranks,
            seed,
            opt,
            policy,
            walk,
        );
    }
}

/// A deterministic sweep guaranteeing every family is exercised on every
/// run (the proptest above samples; this one enumerates), alternating the
/// policy and walk axes so each combination appears.
#[test]
fn every_family_agrees_bitwise_under_both_policies_and_walks() {
    for (i, family) in scenarios::BUILTIN_NAMES.into_iter().enumerate() {
        let policy = if i % 2 == 0 {
            TreePolicy::Rebuild
        } else {
            TreePolicy::Reuse { rebuild_every: 2, drift_threshold: 0.25 }
        };
        // Bit-for-bit equivalence is against the global-insertion build;
        // the merged-local-tree levels fold summaries in merge order and
        // are only statistically equivalent, so the sweep stays on the
        // lock-based insertion levels the sorted build replaces.
        let (opt, walk) = if i % 3 == 0 {
            (OptLevel::CacheLocalTree, WalkMode::Group)
        } else {
            (OptLevel::Redistribute, WalkMode::PerBody)
        };
        assert_builds_agree_bitwise(family, 192, 3, 7 + i as u64, opt, policy, walk);
    }
}
