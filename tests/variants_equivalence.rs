//! Cross-crate tests for the comparison substrates added on top of the
//! paper's ladder: the §5.3.2 shadow-pointer cache, the MuPC-style
//! transparent scalar cache, and the message-passing (MPI-style) solver.
//!
//! The common theme: every variant must compute the same physics, and its
//! performance relationship to the manual optimizations must match what the
//! paper claims (little change for §5.3.2, partial recovery for transparent
//! caching, comparable efficiency for the MPI-style code).

use barnes_hut_upc::prelude::*;

mod common;
use common::deterministic_counters_mode;

const NBODIES: usize = 240;
const RANKS: usize = 3;

fn cfg_with(opt: OptLevel, f: impl FnOnce(&mut SimConfig)) -> SimConfig {
    let mut cfg = SimConfig::test(NBODIES, RANKS, opt);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    f(&mut cfg);
    cfg
}

fn mean_position_difference(a: &[Body], b: &[Body]) -> f64 {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x.pos - y.pos).norm()).sum::<f64>() / a.len() as f64
}

#[test]
fn shadow_cache_matches_separate_cache_and_changes_little() {
    let separate = bh::run_simulation(&cfg_with(OptLevel::CacheLocalTree, |_| {}));
    let shadow = bh::run_simulation(&cfg_with(OptLevel::CacheLocalTree, |c| c.shadow_cache = true));

    // Same physics.
    let diff = mean_position_difference(&separate.bodies, &shadow.bodies);
    assert!(diff < 1e-3, "shadow-pointer cache changed the physics: {diff}");

    // §5.3.2: "little performance improvement" — the variant does not
    // change global communication.  In counters: remote traffic within a
    // small factor (the two runs race their tree builds independently, and
    // which rank allocates a cell decides its affinity, so per-run remote
    // counts wobble ~10%; exact equality over one shared tree is asserted
    // in the `bh::shadow` unit tests).  The cached/uncached gap this is
    // contrasted with is ~27x.
    let (sh, sep) = (shadow.total_stats(), separate.total_stats());
    let gets_ratio = sh.remote_gets as f64 / sep.remote_gets.max(1) as f64;
    assert!(
        (0.7..=1.4).contains(&gets_ratio),
        "shadow cache must not change remote traffic ({} vs {})",
        sh.remote_gets,
        sep.remote_gets
    );
    if deterministic_counters_mode() {
        return;
    }
    // The timing form of the same claim: the two cached variants land within
    // a small factor of each other, far closer than the orders of magnitude
    // separating cached from uncached levels.
    let ratio = shadow.phases.force / separate.phases.force.max(1e-12);
    assert!(
        (0.5..=1.5).contains(&ratio),
        "shadow cache force time should be close to the separate-tree cache (ratio {ratio})"
    );
}

#[test]
fn software_scalar_cache_preserves_physics_and_cuts_scalar_traffic() {
    let plain = bh::run_simulation(&cfg_with(OptLevel::Baseline, |_| {}));
    let cached =
        bh::run_simulation(&cfg_with(OptLevel::Baseline, |c| c.software_scalar_cache = true));

    let diff = mean_position_difference(&plain.bodies, &cached.bodies);
    assert!(diff < 1e-3, "transparent caching changed the physics: {diff}");

    let plain_gets = plain.total_stats().remote_gets;
    let cached_gets = cached.total_stats().remote_gets;
    assert!(
        cached_gets < plain_gets,
        "the software cache must remove remote scalar reads ({cached_gets} vs {plain_gets})"
    );
    assert!(cached.total <= plain.total * 1.01, "caching must not slow the baseline down");
}

#[test]
fn software_scalar_cache_does_not_recover_the_manual_ladder() {
    // The paper's scepticism (§8): transparent caching of scalars cannot
    // substitute for the application-level optimizations, because the bulk
    // of the baseline's traffic is fine-grained access to bodies and cells.
    let swcached =
        bh::run_simulation(&cfg_with(OptLevel::Baseline, |c| c.software_scalar_cache = true));
    let manually_optimized = bh::run_simulation(&cfg_with(OptLevel::CacheLocalTree, |_| {}));
    if deterministic_counters_mode() {
        // The counter form: the software cache only removes scalar reads,
        // leaving the fine-grained body/cell traffic that caching cells
        // eliminates (observed ~40x apart on this workload).
        let sw = swcached.total_stats().remote_gets;
        let manual = manually_optimized.total_stats().remote_gets;
        assert!(
            sw as f64 > 3.0 * manual as f64,
            "transparent scalar caching ({sw} remote gets) must not approach the §5.3 cell cache ({manual})"
        );
        return;
    }
    assert!(
        swcached.phases.force > 3.0 * manually_optimized.phases.force,
        "transparent scalar caching ({:.4}s) must not come close to the §5.3 cached force phase ({:.4}s)",
        swcached.phases.force,
        manually_optimized.phases.force
    );
}

#[test]
fn software_scalar_cache_recovers_part_of_the_replication_gain() {
    let plain = bh::run_simulation(&cfg_with(OptLevel::Baseline, |_| {}));
    let swcached =
        bh::run_simulation(&cfg_with(OptLevel::Baseline, |c| c.software_scalar_cache = true));
    let replicated = bh::run_simulation(&cfg_with(OptLevel::ReplicateScalars, |_| {}));

    // Ordering claim: baseline ≥ software cache ≥ manual replication (the
    // manual version also avoids the first read per epoch and the cache
    // bookkeeping).  The counter form is deterministic; the timing form
    // carries a few percent of thread-scheduling noise (lock/allocation
    // order changes the per-rank maximum) and is skipped in CI.
    let (p, s, r) = (plain.total_stats(), swcached.total_stats(), replicated.total_stats());
    assert!(s.remote_gets as f64 <= p.remote_gets as f64 * 1.02);
    assert!(r.remote_gets as f64 <= s.remote_gets as f64 * 1.02);
    if deterministic_counters_mode() {
        return;
    }
    assert!(swcached.phases.force <= plain.phases.force * 1.10);
    assert!(replicated.phases.force <= swcached.phases.force * 1.10);
}

#[test]
fn mpi_comparator_and_optimized_upc_are_comparably_efficient() {
    // §9: "We suspect that, with all these changes, the UPC code is as
    // efficient as a similar MPI code."  At this scale the two should land
    // within a small factor of each other — and both far below the baseline.
    let cfg = cfg_with(OptLevel::Subspace, |_| {});
    let upc = bh::run_simulation(&cfg);
    let mpi = bh_mpi::run_simulation(&cfg);
    let baseline = bh::run_simulation(&cfg_with(OptLevel::Baseline, |_| {}));

    let ratio = mpi.total / upc.total.max(1e-12);
    assert!(
        (0.2..=5.0).contains(&ratio),
        "optimized UPC ({:.4}s) and MPI-style ({:.4}s) should be comparable (ratio {ratio})",
        upc.total,
        mpi.total
    );
    assert!(mpi.total < baseline.total, "the MPI-style code must beat the naive baseline");
    assert!(upc.total < baseline.total);
}

#[test]
fn mpi_comparator_matches_upc_physics() {
    let cfg = cfg_with(OptLevel::Subspace, |_| {});
    let upc = bh::run_simulation(&cfg);
    let mpi = bh_mpi::run_simulation(&cfg);
    assert_eq!(upc.bodies.len(), mpi.bodies.len());
    let diff = mean_position_difference(&upc.bodies, &mpi.bodies);
    assert!(diff < 1e-2, "the two programming models diverged: mean position difference {diff}");
}

#[test]
fn shadow_cache_composes_with_higher_ladder_levels() {
    // The shadow cache is selectable at any cached level; make sure it also
    // runs under the merged tree build without disturbing the results.
    let plain = bh::run_simulation(&cfg_with(OptLevel::MergedTreeBuild, |_| {}));
    let shadow =
        bh::run_simulation(&cfg_with(OptLevel::MergedTreeBuild, |c| c.shadow_cache = true));
    let diff = mean_position_difference(&plain.bodies, &shadow.bodies);
    assert!(diff < 1e-3);
    assert!(shadow.phases.force > 0.0);
}
