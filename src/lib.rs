//! # barnes-hut-upc
//!
//! Umbrella crate for the reproduction of *"Optimizing the Barnes-Hut
//! Algorithm in UPC"* (Zhang, Behzad, Snir; SC 2011).  It re-exports the
//! workspace's public API so that applications can depend on a single crate:
//!
//! * [`pgas`] — the UPC-style PGAS emulator with its communication cost
//!   model (machine description, shared arrays, global pointers, collectives,
//!   non-blocking aggregated gathers).
//! * [`nbody`] — the physics substrate (bodies, Plummer model, Morton codes,
//!   direct summation, leapfrog, energy diagnostics).
//! * [`octree`] — the sequential Barnes-Hut octree, tree walk and costzones
//!   partitioning, plus the Warren–Salmon hashed oct-tree and ORB
//!   partitioner comparison substrates.
//! * [`bh`] — the distributed Barnes-Hut application with the paper's full
//!   optimization ladder and the experiment driver.
//! * [`bh_mpi`] — the message-passing (MPI-style) comparator the paper's
//!   conclusion plans to compare against, running on the same machine model.
//! * [`scenarios`] — the workload-generation subsystem: six deterministic,
//!   seedable initial-condition families (`plummer`, `king`, `hernquist`,
//!   `exp-disk`, `cold-cube`, `merger`) behind a string-keyed registry, so
//!   every solver and bench can run any workload, not just the paper's
//!   Plummer spheres.  The `bhsim` binary drives any scenario through any
//!   optimization level on any emulated machine shape.
//!
//! ## Quickstart
//!
//! ```
//! use barnes_hut_upc::prelude::*;
//!
//! // Emulate 4 single-threaded nodes and run the fully optimized solver.
//! let machine = Machine::process_per_node(4);
//! let mut cfg = SimConfig::new(2_000, machine, OptLevel::Subspace);
//! cfg.steps = 2;
//! cfg.measured_steps = 1;
//! let result = run_simulation(&cfg);
//! println!("force phase: {:.3} simulated seconds", result.phases.force);
//! assert_eq!(result.bodies.len(), 2_000);
//! ```
//!
//! ## Running a non-Plummer workload
//!
//! Any registered scenario feeds the same solvers through
//! [`run_simulation_on`](bh::run_simulation_on):
//!
//! ```
//! use barnes_hut_upc::prelude::*;
//!
//! // A rotating exponential disk on 2 emulated nodes, cached force phase.
//! let registry = scenario_registry();
//! let disk = registry.get("exp-disk").unwrap();
//! let mut cfg = SimConfig::new(1_024, Machine::process_per_node(2), OptLevel::CacheLocalTree);
//! cfg.steps = 2;
//! cfg.measured_steps = 1;
//! let tuning = disk.recommended_config();
//! cfg.theta = tuning.theta;
//! cfg.eps = tuning.eps;
//! cfg.dt = tuning.dt;
//! let bodies = disk.generate(cfg.nbodies, cfg.seed);
//! let result = run_simulation_on(&cfg, bodies);
//! assert_eq!(result.bodies.len(), 1_024);
//! assert!(result.phases.force > 0.0);
//! ```
//!
//! From the command line, the same run is
//! `cargo run --release --bin bhsim -- --scenario exp-disk --n 1024 --opt cache-local-tree --nodes 2`.

pub use bh;
pub use bh_mpi;
pub use nbody;
pub use octree;
pub use pgas;
pub use scenarios;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use bh::{
        run_simulation, run_simulation_on, OptLevel, Phase, PhaseTimes, SimConfig, SimResult,
    };
    pub use nbody::plummer::{generate, PlummerConfig};
    pub use nbody::{Body, Vec3};
    pub use octree::{Octree, TreeParams};
    pub use pgas::{Ctx, GlobalPtr, Machine, Runtime, SharedArena, SharedVec};
    pub use scenarios::{builtin as scenario_registry, Diagnostics, Registry, Scenario, Tuning};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let cfg = SimConfig::test(128, 2, OptLevel::CacheLocalTree);
        let result = run_simulation(&cfg);
        assert_eq!(result.bodies.len(), 128);
        assert!(result.phases.total() > 0.0);
    }
}
