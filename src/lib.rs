//! # barnes-hut-upc
//!
//! Umbrella crate for the reproduction of *"Optimizing the Barnes-Hut
//! Algorithm in UPC"* (Zhang, Behzad, Snir; SC 2011).  It re-exports the
//! workspace's public API so that applications can depend on a single crate:
//!
//! * [`pgas`] — the UPC-style PGAS emulator with its communication cost
//!   model (machine description, shared arrays, global pointers, collectives,
//!   non-blocking aggregated gathers).
//! * [`nbody`] — the physics substrate (bodies, Plummer model, Morton codes,
//!   direct summation, leapfrog, energy diagnostics).
//! * [`octree`] — the sequential Barnes-Hut octree, tree walk and costzones
//!   partitioning, plus the Warren–Salmon hashed oct-tree and ORB
//!   partitioner comparison substrates.
//! * [`engine`] — the solver-neutral engine layer: [`SimConfig`], the
//!   per-phase [`SimResult`] vocabulary, the [`Backend`] trait with its
//!   string-keyed registry, the direct-summation reference backend and the
//!   shared head-to-head comparison driver.
//! * [`bh`] — the UPC-emulated Barnes-Hut application with the paper's full
//!   optimization ladder (backend `upc`).
//! * [`bh_mpi`] — the message-passing (MPI-style) comparator the paper's
//!   conclusion plans to compare against (backend `mpi`).
//! * [`scenarios`] — the workload-generation subsystem: six deterministic,
//!   seedable initial-condition families (`plummer`, `king`, `hernquist`,
//!   `exp-disk`, `cold-cube`, `merger`) behind a string-keyed registry, so
//!   every solver and bench can run any workload, not just the paper's
//!   Plummer spheres.  The `bhsim` binary drives any scenario through any
//!   backend on any emulated machine shape.
//!
//! ## Quickstart
//!
//! ```
//! use barnes_hut_upc::prelude::*;
//!
//! // Emulate 4 single-threaded nodes and run the fully optimized solver.
//! let machine = Machine::process_per_node(4);
//! let mut cfg = SimConfig::new(2_000, machine, OptLevel::Subspace);
//! cfg.steps = 2;
//! cfg.measured_steps = 1;
//! let result = run_simulation(&cfg);
//! println!("force phase: {:.3} simulated seconds", result.phases.force);
//! assert_eq!(result.bodies.len(), 2_000);
//! ```
//!
//! ## Any scenario on any backend
//!
//! Workloads and solvers are both registries: pick a scenario by name, pick
//! a backend by name (`upc`, `mpi`, `direct`), and run one against the
//! other — or several backends head-to-head through the shared comparison
//! driver:
//!
//! ```
//! use barnes_hut_upc::prelude::*;
//!
//! // A rotating exponential disk under message passing, 2 emulated nodes.
//! let scenarios = scenario_registry();
//! let disk = scenarios.get("exp-disk").unwrap();
//! let mut cfg = SimConfig::new(512, Machine::process_per_node(2), OptLevel::Subspace);
//! cfg.steps = 2;
//! cfg.measured_steps = 1;
//! let tuning = disk.recommended_config();
//! cfg.theta = tuning.theta;
//! cfg.eps = tuning.eps;
//! cfg.dt = tuning.dt;
//! let bodies = disk.generate(cfg.nbodies, cfg.seed);
//!
//! let backends = backend_registry();
//! let mpi = backends.get("mpi").unwrap().run(&cfg, bodies.clone());
//! assert_eq!(mpi.bodies.len(), 512);
//!
//! // Head-to-head: the same workload through two backends, one table.
//! let names = vec!["mpi".to_string(), "direct".to_string()];
//! let runs = engine::run_backends(&backends, &names, &cfg, &bodies).unwrap();
//! println!("{}", engine::comparison_table(&runs));
//! ```
//!
//! From the command line, the same comparison is
//! `cargo run --release --bin bhsim -- --scenario exp-disk --n 512 --nodes 2 --compare mpi,direct`.

pub use bh;
pub use bh_mpi;
pub use engine;
pub use nbody;
pub use octree;
pub use pgas;
pub use scenarios;

use engine::BackendRegistry;

/// A backend registry preloaded with the three built-in solvers:
///
/// | name     | crate          | programming model |
/// |----------|----------------|-------------------|
/// | `upc`    | [`bh`]         | one-sided PGAS (the paper's ladder, all seven levels via `cfg.opt`) |
/// | `mpi`    | [`bh_mpi`]     | two-sided message passing (Morton decomposition + pushed LETs) |
/// | `direct` | [`engine`]     | exact O(n²) direct summation (replicated data), the ground truth |
///
/// Mirrors [`scenarios::builtin`]: any scenario's bodies can be pushed
/// through any backend listed here.
pub fn backends() -> BackendRegistry {
    let mut registry = BackendRegistry::new();
    registry.register(Box::new(bh::UpcBackend));
    registry.register(Box::new(bh_mpi::MpiBackend));
    registry.register(Box::new(engine::DirectBackend));
    registry
}

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::backends as backend_registry;
    pub use bh::{
        run_simulation, run_simulation_on, OptLevel, Phase, PhaseTimes, SimConfig, SimResult,
        TreeBuild, TreePolicy, WalkMode,
    };
    pub use engine::{Backend, BackendRegistry, BackendRun};
    pub use nbody::plummer::{generate, PlummerConfig};
    pub use nbody::{Body, Vec3};
    pub use octree::{Octree, TreeParams};
    pub use pgas::{Ctx, GlobalPtr, Machine, Runtime, SharedArena, SharedVec};
    pub use scenarios::{builtin as scenario_registry, Diagnostics, Registry, Scenario, Tuning};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let cfg = SimConfig::test(128, 2, OptLevel::CacheLocalTree);
        let result = run_simulation(&cfg);
        assert_eq!(result.bodies.len(), 128);
        assert!(result.phases.total() > 0.0);
    }

    #[test]
    fn builtin_backends_are_all_registered() {
        let registry = backend_registry();
        assert_eq!(registry.names(), vec!["upc", "mpi", "direct"]);
        for backend in registry.iter() {
            assert!(!backend.description().is_empty());
        }
    }
}
