//! # barnes-hut-upc
//!
//! Umbrella crate for the reproduction of *"Optimizing the Barnes-Hut
//! Algorithm in UPC"* (Zhang, Behzad, Snir; SC 2011).  It re-exports the
//! workspace's public API so that applications can depend on a single crate:
//!
//! * [`pgas`] — the UPC-style PGAS emulator with its communication cost
//!   model (machine description, shared arrays, global pointers, collectives,
//!   non-blocking aggregated gathers).
//! * [`nbody`] — the physics substrate (bodies, Plummer model, Morton codes,
//!   direct summation, leapfrog, energy diagnostics).
//! * [`octree`] — the sequential Barnes-Hut octree, tree walk and costzones
//!   partitioning, plus the Warren–Salmon hashed oct-tree and ORB
//!   partitioner comparison substrates.
//! * [`bh`] — the distributed Barnes-Hut application with the paper's full
//!   optimization ladder and the experiment driver.
//! * [`bh_mpi`] — the message-passing (MPI-style) comparator the paper's
//!   conclusion plans to compare against, running on the same machine model.
//!
//! ## Quickstart
//!
//! ```
//! use barnes_hut_upc::prelude::*;
//!
//! // Emulate 4 single-threaded nodes and run the fully optimized solver.
//! let machine = Machine::process_per_node(4);
//! let mut cfg = SimConfig::new(2_000, machine, OptLevel::Subspace);
//! cfg.steps = 2;
//! cfg.measured_steps = 1;
//! let result = run_simulation(&cfg);
//! println!("force phase: {:.3} simulated seconds", result.phases.force);
//! assert_eq!(result.bodies.len(), 2_000);
//! ```

pub use bh;
pub use bh_mpi;
pub use nbody;
pub use octree;
pub use pgas;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use bh::{run_simulation, OptLevel, Phase, PhaseTimes, SimConfig, SimResult};
    pub use nbody::plummer::{generate, PlummerConfig};
    pub use nbody::{Body, Vec3};
    pub use octree::{Octree, TreeParams};
    pub use pgas::{Ctx, GlobalPtr, Machine, Runtime, SharedArena, SharedVec};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let cfg = SimConfig::test(128, 2, OptLevel::CacheLocalTree);
        let result = run_simulation(&cfg);
        assert_eq!(result.bodies.len(), 128);
        assert!(result.phases.total() > 0.0);
    }
}
