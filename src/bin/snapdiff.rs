//! `snapdiff` — structural diff between two snapstore checkpoints.
//!
//! Compares two `bhsnap/v1` manifests at the chunk level (which columns of
//! which body set moved, how much of the content-addressed store the two
//! snapshots share) and, with `--bodies`, materializes both body sets for a
//! bit-exact field-level comparison.
//!
//! ```text
//! snapdiff ckpt/step-0004.json ckpt/step-0006.json
//! snapdiff --bodies a/step-0008.json b/step-0008.json
//! snapdiff --json ckpt/step-0004.json ckpt/step-0006.json
//! ```
//!
//! Exit status: 0 when the snapshots are bit-identical, 1 when they differ,
//! 2 on usage or store errors — so scripts (the CI checkpoint smoke) can
//! assert equality without parsing output.

use std::path::Path;

use snapstore::{diff_bodies, diff_manifests, load_manifest, load_state, SnapDiff};

struct Options {
    a: String,
    b: String,
    bodies: bool,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: snapdiff [--bodies] [--json] MANIFEST_A MANIFEST_B\n\
         \n\
         Compares two snapstore checkpoint manifests:\n\
           default    chunk-level diff (which columns moved, shared storage)\n\
           --bodies   additionally load both body sets and report bit-exact\n\
                      per-field counts and the largest displacement\n\
           --json     machine-readable output\n\
         \n\
         exit status: 0 identical, 1 different, 2 error"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut positional: Vec<String> = Vec::new();
    let mut bodies = false;
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--bodies" => bodies = true,
            "--json" => json = true,
            other if other.starts_with("--") => {
                eprintln!("snapdiff: unknown option: {other}");
                usage()
            }
            _ => positional.push(arg),
        }
    }
    if positional.len() != 2 {
        eprintln!("snapdiff: expected exactly two manifest paths");
        usage()
    }
    let mut it = positional.into_iter();
    Options { a: it.next().unwrap(), b: it.next().unwrap(), bodies, json }
}

fn fail(e: impl std::fmt::Display) -> ! {
    eprintln!("snapdiff: {e}");
    std::process::exit(2)
}

fn diff_value(diff: &SnapDiff, delta: Option<&snapstore::BodyDelta>) -> serde::Value {
    let columns = diff
        .columns
        .iter()
        .map(|c| {
            serde::Value::Object(vec![
                ("set".to_string(), serde::Value::String(c.set.to_string())),
                ("column".to_string(), serde::Value::String(c.column.to_string())),
                ("chunks_a".to_string(), serde::Value::UInt(c.chunks_a as u64)),
                ("chunks_b".to_string(), serde::Value::UInt(c.chunks_b as u64)),
                ("changed".to_string(), serde::Value::UInt(c.changed as u64)),
            ])
        })
        .collect();
    let mut entries = vec![
        ("identical".to_string(), serde::Value::Bool(diff.identical)),
        ("same_run".to_string(), serde::Value::Bool(diff.same_run)),
        ("step_a".to_string(), serde::Value::UInt(diff.step_a as u64)),
        ("step_b".to_string(), serde::Value::UInt(diff.step_b as u64)),
        ("anchor_step_a".to_string(), serde::Value::UInt(diff.anchor_step_a as u64)),
        ("anchor_step_b".to_string(), serde::Value::UInt(diff.anchor_step_b as u64)),
        ("generation_a".to_string(), serde::Value::UInt(diff.generation_a)),
        ("generation_b".to_string(), serde::Value::UInt(diff.generation_b)),
        ("chunks_union".to_string(), serde::Value::UInt(diff.chunks_union as u64)),
        ("chunks_shared".to_string(), serde::Value::UInt(diff.chunks_shared as u64)),
        ("shared_fraction".to_string(), serde::Value::Float(diff.shared_fraction())),
        ("columns".to_string(), serde::Value::Array(columns)),
    ];
    if let Some(d) = delta {
        entries.push((
            "bodies".to_string(),
            serde::Value::Object(vec![
                ("compared".to_string(), serde::Value::UInt(d.compared as u64)),
                ("unmatched".to_string(), serde::Value::UInt(d.unmatched as u64)),
                ("moved".to_string(), serde::Value::UInt(d.moved as u64)),
                ("kicked".to_string(), serde::Value::UInt(d.kicked as u64)),
                ("changed".to_string(), serde::Value::UInt(d.changed as u64)),
                ("max_displacement".to_string(), serde::Value::Float(d.max_displacement)),
                ("identical".to_string(), serde::Value::Bool(d.identical())),
            ]),
        ));
    }
    serde::Value::Object(entries)
}

fn main() {
    let opts = parse_args();
    let a = load_manifest(Path::new(&opts.a)).unwrap_or_else(|e| fail(e));
    let b = load_manifest(Path::new(&opts.b)).unwrap_or_else(|e| fail(e));
    let diff = diff_manifests(&a, &b);

    let delta = if opts.bodies {
        let state_a = load_state(Path::new(&opts.a)).unwrap_or_else(|e| fail(e));
        let state_b = load_state(Path::new(&opts.b)).unwrap_or_else(|e| fail(e));
        Some(diff_bodies(&state_a.bodies, &state_b.bodies))
    } else {
        None
    };

    if opts.json {
        struct Raw(serde::Value);
        impl serde::Serialize for Raw {
            fn to_value(&self) -> serde::Value {
                self.0.clone()
            }
        }
        println!(
            "{}",
            serde_json::to_string_pretty(&Raw(diff_value(&diff, delta.as_ref())))
                .expect("serialize diff")
        );
    } else {
        if !diff.same_run {
            eprintln!(
                "snapdiff: note: the manifests describe different runs \
                 ({}/{} seed {} n {} vs {}/{} seed {} n {})",
                a.scenario,
                a.backend,
                a.cfg.seed,
                a.cfg.nbodies,
                b.scenario,
                b.backend,
                b.cfg.seed,
                b.cfg.nbodies,
            );
        }
        println!(
            "steps {} -> {} | anchors {} -> {} | tree generations {} -> {}",
            diff.step_a,
            diff.step_b,
            diff.anchor_step_a,
            diff.anchor_step_b,
            diff.generation_a,
            diff.generation_b,
        );
        println!(
            "chunks: {} shared of {} referenced ({:.1}% of the store reused)",
            diff.chunks_shared,
            diff.chunks_union,
            100.0 * diff.shared_fraction()
        );
        if diff.identical {
            println!("snapshots are bit-identical");
        } else {
            for c in &diff.columns {
                println!(
                    "  {:>6}.{:<5} {} of {} chunk(s) changed{}",
                    c.set,
                    c.column,
                    c.changed,
                    c.chunks_a.max(c.chunks_b),
                    if c.chunks_a != c.chunks_b { " (length changed)" } else { "" }
                );
            }
        }
        if let Some(d) = &delta {
            println!(
                "bodies: {} compared, {} moved, {} kicked, {} changed in any field, \
                 max displacement {:.3e}{}",
                d.compared,
                d.moved,
                d.kicked,
                d.changed,
                d.max_displacement,
                if d.unmatched > 0 {
                    format!(", {} unmatched", d.unmatched)
                } else {
                    String::new()
                }
            );
        }
    }

    let identical = diff.identical && delta.as_ref().is_none_or(|d| d.identical());
    std::process::exit(if identical { 0 } else { 1 })
}
