//! `bhsim` — scenario × backend driver for the emulated Barnes-Hut system.
//!
//! Runs any registered workload scenario through any registered solver
//! backend (`upc` — the paper's optimization ladder, `mpi` — the
//! message-passing comparator, `direct` — exact summation) on any emulated
//! machine shape, and prints the per-phase timing breakdown (the paper's
//! table rows) together with the communication-traffic counters the emulator
//! collects.  `--compare` runs the same scenario/seed/machine through
//! several backends and prints one side-by-side table — the head-to-head
//! experiment the paper's §9 defers to future work.
//!
//! ```text
//! bhsim --list
//! bhsim --scenario exp-disk --n 4096 --opt subspace --nodes 4
//! bhsim --scenario hernquist --n 8192 --backend mpi --nodes 8
//! bhsim --scenario king --n 2048 --compare upc,mpi,direct --json
//! bhsim --scenario plummer --n 2048 --steps 8 --checkpoint-every 2 --checkpoint-dir ckpt
//! bhsim --resume ckpt/step-0004.json --json
//! ```
//!
//! Checkpointing runs the solver step-tracked and saves a resumable
//! snapshot (`snapstore`, content-addressed) every N steps; `--resume`
//! replays from the snapshot's rebuild anchor, verifies the replay
//! bit-for-bit against the stored bodies, and continues to the run's
//! configured steps — the final state is bit-identical to the
//! uninterrupted run (compare `state_digest` in `--json` output).

use std::path::Path;

use barnes_hut_upc::engine;
use barnes_hut_upc::prelude::*;
use engine::bench::RunSpec;
use snapstore::{SimState, Store};

struct Options {
    scenario: String,
    backend: String,
    compare: Option<Vec<String>>,
    nbodies: usize,
    opt: OptLevel,
    nodes: usize,
    threads_per_node: usize,
    pthreads: bool,
    seed: u64,
    steps: usize,
    measured: usize,
    tree_policy: TreePolicy,
    walk: WalkMode,
    build: TreeBuild,
    rebuild_every: Option<usize>,
    drift_threshold: Option<f64>,
    theta: Option<f64>,
    eps: Option<f64>,
    dt: Option<f64>,
    checkpoint_every: Option<usize>,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    faults: engine::FaultPlan,
    json: bool,
    list: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            scenario: "plummer".to_string(),
            backend: "upc".to_string(),
            compare: None,
            nbodies: 16_384,
            opt: OptLevel::Subspace,
            nodes: 4,
            threads_per_node: 1,
            pthreads: false,
            seed: 1_234_567,
            steps: 4,
            measured: 2,
            tree_policy: TreePolicy::Rebuild,
            walk: WalkMode::PerBody,
            build: TreeBuild::Insertion,
            rebuild_every: None,
            drift_threshold: None,
            theta: None,
            eps: None,
            dt: None,
            checkpoint_every: None,
            checkpoint_dir: None,
            resume: None,
            faults: engine::FaultPlan::default(),
            json: false,
            list: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: bhsim [options]\n\
         \n\
         workload:\n\
           --scenario NAME      workload family (default plummer); see --list\n\
           --n N                number of bodies          (default 16384)\n\
           --seed S             workload RNG seed         (default 1234567)\n\
         \n\
         solver:\n\
           --backend NAME       solver backend            (default upc); see --list\n\
           --compare B1,B2,...  run several backends on the same workload and\n\
                                print one side-by-side comparison table\n\
           --opt LEVEL          upc optimization level    (default subspace)\n\
                                levels: {}\n\
           --steps N            time steps to run         (default 4)\n\
           --measured N         trailing steps measured   (default 2)\n\
           --tree-policy P      tree lifecycle across steps (default rebuild)\n\
                                policies: rebuild, reuse, adaptive\n\
           --rebuild-every N    reuse policy: full rebuild cadence (default {})\n\
           --drift-threshold F  reuse policy: drifted-leaf fraction forcing a\n\
                                rebuild                   (default {})\n\
           --walk MODE          force-walk traversal mode (default per-body)\n\
                                modes: per-body, group (group needs a caching\n\
                                --opt level: cache-local-tree and above)\n\
           --build ALGO         tree-construction algorithm (default insertion)\n\
                                algorithms: insertion, sorted (sorted needs an\n\
                                owner-computes --opt level: redistribute\n\
                                through async-aggregation)\n\
           --theta T            opening criterion         (default: scenario's)\n\
           --eps E              softening                 (default: scenario's)\n\
           --dt DT              time step                 (default: scenario's)\n\
         \n\
         machine:\n\
           --nodes N            emulated nodes            (default 4)\n\
           --threads-per-node T UPC threads per node      (default 1)\n\
           --pthreads           emulate the -pthreads runtime\n\
         \n\
         checkpointing (content-addressed snapstore):\n\
           --checkpoint-every N save a resumable snapshot every N completed steps\n\
           --checkpoint-dir D   snapshot store directory (required with\n\
                                --checkpoint-every; snapshots land as\n\
                                D/step-NNNN.json + deduplicated chunks)\n\
           --resume MANIFEST    continue an interrupted run from a snapshot\n\
                                manifest; the workload/solver flags come from\n\
                                the manifest, and the finished run is\n\
                                bit-identical to an uninterrupted one\n\
         \n\
         fault injection (the faultline plane; deterministic, seeded):\n\
           --faults SPEC        inject faults at named sites; SPEC is a\n\
                                comma-separated list like\n\
                                  seed=7,engine.step@n2,snap.chunk.torn@p0.1\n\
                                triggers: @nK (Kth call), @pF (probability F\n\
                                per call from a seeded stream), @sL..H (once\n\
                                in step/call range [L,H)); engine.step faults\n\
                                need --checkpoint-every — the supervisor\n\
                                restores the latest snapshot and replays with\n\
                                bounded backoff, bit-identical to a fault-free\n\
                                run (compare state_digest)\n\
         \n\
         output:\n\
           --list               list the registered scenarios and backends, then exit\n\
           --json               print the report as JSON instead of a table\n",
        OptLevel::ALL.map(|l| l.name()).join(", "),
        TreePolicy::DEFAULT_REBUILD_EVERY,
        TreePolicy::DEFAULT_DRIFT_THRESHOLD,
    );
    std::process::exit(2)
}

/// Parses the value of `flag`, naming the flag and the offending value on
/// failure instead of a bare exit.
fn num<T: std::str::FromStr>(flag: &str, s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bhsim: invalid value for {flag}: {s:?} is not a valid number");
        usage()
    })
}

/// Parses a physics parameter that must be finite and positive (a zero `dt`
/// freezes the integrator, a negative θ or ε turns positions into NaNs).
fn positive(flag: &str, s: &str) -> f64 {
    let v: f64 = num(flag, s);
    if !v.is_finite() || v <= 0.0 {
        eprintln!("bhsim: invalid value for {flag}: {s} (must be positive and finite)");
        usage()
    }
    v
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let value = |arg: Option<String>, flag: &str| -> String {
        arg.unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--list" => opts.list = true,
            "--json" => opts.json = true,
            "--pthreads" => opts.pthreads = true,
            "--scenario" => opts.scenario = value(args.next(), "--scenario"),
            "--backend" => opts.backend = value(args.next(), "--backend"),
            "--compare" => {
                let list = value(args.next(), "--compare");
                let names: Vec<String> = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if names.is_empty() {
                    eprintln!("--compare needs a comma-separated list of backends");
                    usage()
                }
                opts.compare = Some(names);
            }
            "--n" => opts.nbodies = num("--n", &value(args.next(), "--n")),
            "--seed" => opts.seed = num("--seed", &value(args.next(), "--seed")),
            "--nodes" => opts.nodes = num("--nodes", &value(args.next(), "--nodes")),
            "--threads-per-node" => {
                opts.threads_per_node =
                    num("--threads-per-node", &value(args.next(), "--threads-per-node"))
            }
            "--steps" => opts.steps = num("--steps", &value(args.next(), "--steps")),
            "--measured" => opts.measured = num("--measured", &value(args.next(), "--measured")),
            "--tree-policy" => {
                let name = value(args.next(), "--tree-policy");
                opts.tree_policy = TreePolicy::from_name(&name).unwrap_or_else(|| {
                    let known = ["rebuild", "reuse", "adaptive"];
                    eprintln!(
                        "bhsim: {}",
                        engine::suggest::unknown_key("tree policy", &name, &known)
                    );
                    usage()
                });
            }
            "--walk" => {
                let name = value(args.next(), "--walk");
                opts.walk = WalkMode::from_name(&name).unwrap_or_else(|| {
                    let known = WalkMode::ALL.map(|m| m.name());
                    eprintln!(
                        "bhsim: {}",
                        engine::suggest::unknown_key("walk mode", &name, &known)
                    );
                    usage()
                });
            }
            "--build" => {
                let name = value(args.next(), "--build");
                opts.build = TreeBuild::from_name(&name).unwrap_or_else(|| {
                    let known = TreeBuild::ALL.map(|b| b.name());
                    eprintln!(
                        "bhsim: {}",
                        engine::suggest::unknown_key("tree build", &name, &known)
                    );
                    usage()
                });
            }
            "--checkpoint-every" => {
                let v = value(args.next(), "--checkpoint-every");
                let every: usize = num("--checkpoint-every", &v);
                if every == 0 {
                    eprintln!("bhsim: invalid value for --checkpoint-every: must be at least 1");
                    usage()
                }
                opts.checkpoint_every = Some(every);
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(value(args.next(), "--checkpoint-dir"))
            }
            "--resume" => opts.resume = Some(value(args.next(), "--resume")),
            "--faults" => {
                let spec = value(args.next(), "--faults");
                opts.faults = engine::FaultPlan::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("bhsim: invalid --faults spec: {e}");
                    usage()
                });
            }
            "--rebuild-every" => {
                let v = value(args.next(), "--rebuild-every");
                let every: usize = num("--rebuild-every", &v);
                if every == 0 {
                    eprintln!("bhsim: invalid value for --rebuild-every: must be at least 1");
                    usage()
                }
                opts.rebuild_every = Some(every);
            }
            "--drift-threshold" => {
                let v = value(args.next(), "--drift-threshold");
                let drift: f64 = num("--drift-threshold", &v);
                if !drift.is_finite() || drift < 0.0 {
                    eprintln!(
                        "bhsim: invalid value for --drift-threshold: {v} (must be finite and \
                         non-negative)"
                    );
                    usage()
                }
                opts.drift_threshold = Some(drift);
            }
            "--theta" => opts.theta = Some(positive("--theta", &value(args.next(), "--theta"))),
            "--eps" => opts.eps = Some(positive("--eps", &value(args.next(), "--eps"))),
            "--dt" => opts.dt = Some(positive("--dt", &value(args.next(), "--dt"))),
            "--opt" => {
                let name = value(args.next(), "--opt");
                opts.opt = OptLevel::from_name(&name).unwrap_or_else(|| {
                    let known = OptLevel::ALL.map(|l| l.name());
                    eprintln!(
                        "bhsim: {}",
                        engine::suggest::unknown_key("optimization level", &name, &known)
                    );
                    usage()
                });
            }
            other => {
                eprintln!("unknown option: {other}");
                usage()
            }
        }
    }
    if opts.nodes == 0 || opts.threads_per_node == 0 {
        eprintln!("--nodes and --threads-per-node must be positive");
        usage()
    }
    if opts.measured == 0 || opts.measured > opts.steps {
        eprintln!("--measured must lie in 1..=steps");
        usage()
    }
    // Fold the cadence/drift overrides into the policy; without
    // --tree-policy reuse they have nothing to configure and are rejected.
    if let TreePolicy::Reuse { mut rebuild_every, mut drift_threshold } = opts.tree_policy {
        if let Some(every) = opts.rebuild_every {
            rebuild_every = every;
        }
        if let Some(drift) = opts.drift_threshold {
            drift_threshold = drift;
        }
        opts.tree_policy = TreePolicy::Reuse { rebuild_every, drift_threshold };
    } else if opts.rebuild_every.is_some() || opts.drift_threshold.is_some() {
        eprintln!("bhsim: --rebuild-every / --drift-threshold require --tree-policy reuse");
        usage()
    }
    if opts.checkpoint_every.is_some() != opts.checkpoint_dir.is_some() {
        eprintln!("bhsim: --checkpoint-every and --checkpoint-dir must be given together");
        usage()
    }
    if (opts.checkpoint_every.is_some() || opts.resume.is_some()) && opts.compare.is_some() {
        eprintln!("bhsim: checkpointing and --resume drive a single backend, not --compare");
        usage()
    }
    if opts.faults.targets("engine.step") && opts.checkpoint_every.is_none() {
        eprintln!(
            "bhsim: --faults engine.step needs --checkpoint-every/--checkpoint-dir — the \
             step-fault supervisor recovers by restoring the latest checkpoint"
        );
        usage()
    }
    opts
}

/// Newest `step-NNNN.json` manifest in the checkpoint directory, if any —
/// the restore point the step-fault supervisor resumes from.
fn latest_checkpoint(dir: &str) -> Option<std::path::PathBuf> {
    let mut best: Option<(String, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("step-") && name.ends_with(".json") {
            // Zero-padded step numbers sort lexicographically.
            if best.as_ref().is_none_or(|(b, _)| name > *b) {
                best = Some((name, entry.path()));
            }
        }
    }
    best.map(|(_, path)| path)
}

/// Deterministic jittered backoff for supervisor retries: exponential base
/// with a seed-derived jitter, so chaos runs are reproducible end to end.
fn backoff_ms(seed: u64, attempt: usize) -> u64 {
    let base = 10u64 << (attempt.min(6) - 1);
    let mixed = (seed ^ attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    base + (mixed >> 56) % (base / 2 + 1)
}

/// Opens the snapshot store when checkpointing was requested, armed with
/// the run's fault plan (the `snap.*` injection sites live in the store).
fn checkpoint_store(opts: &Options) -> Option<(Store, usize)> {
    let (dir, every) = (opts.checkpoint_dir.as_ref()?, opts.checkpoint_every?);
    let store = Store::open(dir)
        .unwrap_or_else(|e| {
            eprintln!("bhsim: {e}");
            std::process::exit(1)
        })
        .with_faults(opts.faults.clone());
    Some((store, every))
}

/// The periodic-save policy shared by cold and resumed runs: every N
/// completed steps, plus the run's final state.
fn save_checkpoint(store: &Store, every: usize, state: &SimState, errors: &mut Option<String>) {
    if !state.step.is_multiple_of(every) && state.step != state.cfg.steps {
        return;
    }
    if errors.is_some() {
        return;
    }
    let name = format!("step-{:04}", state.step);
    match store.save(state, &name) {
        Ok(saved) => eprintln!(
            "bhsim: checkpoint {} (step {}, {} chunk(s), {} new)",
            saved.manifest_path.display(),
            state.step,
            saved.chunks_total,
            saved.chunks_new
        ),
        Err(e) => *errors = Some(e.to_string()),
    }
}

/// `--resume`: load the manifest, replay from the anchor, continue to the
/// configured steps, and report like a normal single-backend run.
fn run_resume(opts: &Options, manifest: &str) {
    let state = snapstore::load_state(Path::new(manifest)).unwrap_or_else(|e| {
        eprintln!("bhsim: {e}");
        std::process::exit(1)
    });
    let backends = backend_registry();
    let backend = backends.lookup(&state.backend).unwrap_or_else(|e| {
        eprintln!("bhsim: {e}");
        std::process::exit(2)
    });
    let registry = scenario_registry();
    let scenario = registry.get(&state.scenario).unwrap_or_else(|| {
        eprintln!(
            "bhsim: {}",
            engine::suggest::unknown_key("scenario", &state.scenario, &registry.names())
        );
        std::process::exit(2)
    });
    eprintln!(
        "bhsim: resuming {} | backend {} | step {}/{} | anchor {} (replaying {} step(s) to \
         restore the rebuild cadence)",
        state.scenario,
        state.backend,
        state.step,
        state.cfg.steps,
        state.anchor_step,
        state.step - state.anchor_step,
    );

    let store = checkpoint_store(opts);
    let mut save_error: Option<String> = None;
    let start = std::time::Instant::now();
    let result = snapstore::resume(&state, backend, |continued| {
        if let Some((store, every)) = &store {
            save_checkpoint(store, *every, &continued, &mut save_error);
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("bhsim: {e}");
        std::process::exit(1)
    });
    if let Some(e) = save_error {
        eprintln!("bhsim: checkpoint save failed: {e}");
        std::process::exit(1)
    }

    let run = BackendRun {
        name: state.backend.clone(),
        result,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
    };
    let diag = scenario.diagnostics(&state.bodies);
    if opts.json {
        print_json(&state.scenario, &state.cfg, &diag, std::slice::from_ref(&run), false);
    } else {
        print_report(&state.cfg, &run.result);
    }
}

fn list_registries() {
    println!("registered scenarios:");
    for scenario in scenario_registry().iter() {
        let t = scenario.recommended_config();
        println!(
            "  {:<10} {}  [theta {}, eps {}, dt {}]",
            scenario.name(),
            scenario.description(),
            t.theta,
            t.eps,
            t.dt
        );
    }
    println!();
    println!("registered backends:");
    for backend in backend_registry().iter() {
        println!("  {:<10} {}", backend.name(), backend.description());
    }
    // The remaining sweepable axes are enums, not registries, but a sweep
    // script should be able to discover every axis from one command.
    println!();
    println!("optimization levels (--opt, upc backend):");
    for opt in OptLevel::ALL {
        println!("  {}", opt.name());
    }
    println!();
    println!("tree-stepping policies (--tree-policy):");
    println!("  rebuild    rebuild the octree from scratch every step (the paper's protocol)");
    println!(
        "  reuse      persistent tree; full rebuild every --rebuild-every steps (default {}) \
         or at --drift-threshold drift (default {})",
        TreePolicy::DEFAULT_REBUILD_EVERY,
        TreePolicy::DEFAULT_DRIFT_THRESHOLD
    );
    println!(
        "  adaptive   persistent tree, solver-chosen cadence (drift {}, every {} steps at most)",
        TreePolicy::ADAPTIVE_DRIFT,
        TreePolicy::ADAPTIVE_REBUILD_EVERY
    );
    println!();
    println!("force-walk modes (--walk):");
    for walk in WalkMode::ALL {
        println!("  {:<10} {}", walk.name(), walk.description());
    }
    println!();
    println!("tree-construction algorithms (--build, upc backend):");
    for build in TreeBuild::ALL {
        println!("  {:<10} {}", build.name(), build.description());
    }
}

fn main() {
    let opts = parse_args();
    if opts.list {
        list_registries();
        return;
    }
    if let Some(manifest) = opts.resume.clone() {
        run_resume(&opts, &manifest);
        return;
    }

    let registry = scenario_registry();
    let scenario = registry.get(&opts.scenario).unwrap_or_else(|| {
        eprintln!(
            "{}",
            engine::suggest::unknown_key("scenario", &opts.scenario, &registry.names())
        );
        std::process::exit(2)
    });

    // Machine shape.
    let machine = if opts.pthreads {
        Machine::pthreads_per_node(opts.nodes, opts.threads_per_node)
    } else {
        Machine::power5(opts.nodes, opts.threads_per_node, false)
    };

    // Solver configuration: the scenario's recommended tuning, then any
    // explicit command-line overrides.
    let tuning = scenario.recommended_config();
    let mut cfg = SimConfig::new(opts.nbodies, machine, opts.opt);
    cfg.seed = opts.seed;
    cfg.steps = opts.steps;
    cfg.measured_steps = opts.measured;
    cfg.tree_policy = opts.tree_policy;
    cfg.walk = opts.walk;
    cfg.build = opts.build;
    cfg.theta = opts.theta.unwrap_or(tuning.theta);
    cfg.eps = opts.eps.unwrap_or(tuning.eps);
    cfg.dt = opts.dt.unwrap_or(tuning.dt);
    cfg.faults = opts.faults.clone();
    if let Err(e) = cfg.validate() {
        eprintln!("bhsim: invalid configuration: {e}");
        std::process::exit(2)
    }
    if cfg.tree_policy.reuses_tree()
        && (cfg.opt.merged_tree_build() || cfg.opt.subspace_tree_build())
    {
        eprintln!(
            "bhsim: note: --tree-policy {} has no effect at --opt {} — the merged/subspace \
             builds rebuild cheaply from local trees every step (persistent-tree stepping \
             applies to baseline..cache-local-tree)",
            cfg.tree_policy.name(),
            cfg.opt.name(),
        );
    }

    let backend_names = opts.compare.clone().unwrap_or_else(|| vec![opts.backend.clone()]);

    eprintln!(
        "bhsim: scenario {} | n {} | backend(s) {} | opt {} | {} node(s) x {} thread(s){} | {} step(s), {} measured | tree {} | walk {} | build {}",
        scenario.name(),
        opts.nbodies,
        backend_names.join(","),
        opts.opt.name(),
        opts.nodes,
        opts.threads_per_node,
        if opts.pthreads { " (pthreads)" } else { "" },
        opts.steps,
        opts.measured,
        opts.tree_policy.name(),
        opts.walk.name(),
        opts.build.name(),
    );

    let bodies = scenario.generate(opts.nbodies, opts.seed);
    let diag = scenario.diagnostics(&bodies);
    eprintln!(
        "workload: mass {:.3} | r10/r50/r90 {:.3}/{:.3}/{:.3} | sigma {:.3} | virial {:.3} | |L| {:.3}",
        diag.total_mass,
        diag.r10,
        diag.r50,
        diag.r90,
        diag.velocity_dispersion,
        diag.virial_ratio,
        diag.angular_momentum,
    );

    // The single comparison driver: one backend is just a one-column run.
    // Under --checkpoint-every the run goes through the step-tracked entry
    // instead, feeding a snapstore Recorder that persists resumable
    // snapshots on the requested cadence.
    let backends = backend_registry();
    let runs = if let Some((store, every)) = checkpoint_store(&opts) {
        let backend = backends.lookup(&opts.backend).unwrap_or_else(|e| {
            eprintln!("bhsim: {e}");
            std::process::exit(2)
        });
        if let Err(e) = backend.supports(&cfg) {
            eprintln!("bhsim: backend {} cannot run this config: {e}", opts.backend);
            std::process::exit(2)
        }
        // The step-fault supervisor: a tracked run that aborts with a
        // retryable STEP_FAULT is restored from the newest checkpoint (or
        // restarted from the identical initial conditions when the fault
        // landed before the first save) and replayed with bounded,
        // deterministically jittered backoff.  The replay-anchor machinery
        // verifies the restore bit-for-bit, so a recovered run's
        // state_digest equals the fault-free one.
        const MAX_STEP_RETRIES: usize = 4;
        let dir = opts.checkpoint_dir.as_deref().expect("checkpointing implies a dir");
        let mut save_error: Option<String> = None;
        let start = std::time::Instant::now();
        let mut attempt = 0usize;
        let result = loop {
            let restore = if attempt == 0 { None } else { latest_checkpoint(dir) };
            let outcome = match restore {
                Some(manifest) => {
                    let state = snapstore::load_state(&manifest).unwrap_or_else(|e| {
                        eprintln!("bhsim: restoring {}: {e}", manifest.display());
                        std::process::exit(1)
                    });
                    eprintln!(
                        "bhsim: supervisor restoring {} (step {}/{})",
                        manifest.display(),
                        state.step,
                        state.cfg.steps
                    );
                    snapstore::resume(&state, backend, |continued| {
                        save_checkpoint(&store, every, &continued, &mut save_error);
                    })
                }
                None => {
                    let mut recorder = snapstore::Recorder::new(
                        scenario.name(),
                        &opts.backend,
                        &cfg,
                        bodies.clone(),
                        0,
                    );
                    backend.run_tracked(&cfg, bodies.clone(), &mut |record| {
                        let state = recorder.observe(&record);
                        save_checkpoint(&store, every, &state, &mut save_error);
                    })
                }
            };
            match outcome {
                Ok(result) => break result,
                Err(e) if e.contains(engine::fault::STEP_FAULT) && attempt < MAX_STEP_RETRIES => {
                    attempt += 1;
                    let delay = backoff_ms(cfg.faults.seed, attempt);
                    eprintln!("bhsim: {e}; retry {attempt}/{MAX_STEP_RETRIES} in {delay} ms");
                    std::thread::sleep(std::time::Duration::from_millis(delay));
                }
                Err(e) => {
                    eprintln!("bhsim: {e}");
                    std::process::exit(2)
                }
            }
        };
        if let Some(e) = save_error {
            eprintln!("bhsim: checkpoint save failed: {e}");
            std::process::exit(1)
        }
        vec![BackendRun {
            name: opts.backend.clone(),
            result,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        }]
    } else {
        engine::run_backends(&backends, &backend_names, &cfg, &bodies).unwrap_or_else(|e| {
            eprintln!("bhsim: {e}");
            std::process::exit(2)
        })
    };

    // `--compare upc` (one name) still gets comparison-shaped output — a
    // one-column table, a one-element JSON array — so sweep scripts see a
    // stable shape regardless of how many backends they request.
    let comparing = opts.compare.is_some();
    if opts.json {
        print_json(scenario.name(), &cfg, &diag, &runs, comparing);
    } else if comparing {
        print_comparison(&cfg, &runs);
    } else {
        print_report(&cfg, &runs[0].result);
    }
}

fn print_report(cfg: &SimConfig, result: &SimResult) {
    println!();
    println!(
        "per-phase simulated seconds (max over {} ranks, {} measured step(s)):",
        cfg.ranks(),
        cfg.measured_steps
    );
    println!("  {:<16} {:>12}  {:>6}", "phase", "seconds", "%");
    for phase in Phase::ALL {
        println!(
            "  {:<16} {:>12.6}  {:>5.1}%",
            phase.label(),
            result.phases.get(phase),
            result.phases.percent(phase)
        );
    }
    println!("  {:<16} {:>12.6}", "TOTAL", result.total);

    let stats = result.total_stats();
    println!();
    println!("communication traffic (sum over ranks, whole run):");
    println!("  fine-grained remote ops : {:>12}", stats.remote_ops());
    println!("  bulk messages           : {:>12}", stats.messages);
    println!("  bytes in / out          : {:>12} / {}", stats.bytes_in, stats.bytes_out);
    println!("  lock acquisitions       : {:>12}", stats.lock_acquires);
    println!("  interactions            : {:>12}", stats.interactions);
    println!("  tree operations         : {:>12}", stats.tree_ops);
    println!("  multipole tests (macs)  : {:>12}", stats.macs);
    if let Some(fraction) = result.vlist_single_source_fraction() {
        println!("  vlist single-source     : {:>11.1}%", 100.0 * fraction);
    }
    println!("  migration / step        : {:>11.2}%", 100.0 * result.migration_fraction);

    // Load balance over ranks: the paper's imbalance discussions in one line.
    let times: Vec<f64> = result.ranks.iter().map(|r| r.phases.total()).collect();
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
    if mean > 0.0 {
        println!("  rank imbalance (max/avg): {:>12.3}", max / mean);
    }
}

fn print_comparison(cfg: &SimConfig, runs: &[BackendRun]) {
    println!();
    println!(
        "head-to-head, per-phase simulated seconds (max over {} ranks, {} measured step(s)):",
        cfg.ranks(),
        cfg.measured_steps
    );
    print!("{}", engine::comparison_table(runs));
    // Makespan ratios against the first (reference) backend.
    let reference = &runs[0];
    println!();
    for run in &runs[1..] {
        println!(
            "  {} / {} makespan ratio: {:.3}",
            run.name,
            reference.name,
            run.result.total / reference.result.total.max(1e-12)
        );
    }
}

fn summary_value(
    scenario: &str,
    cfg: &SimConfig,
    diag: &Diagnostics,
    run: &BackendRun,
) -> serde::Value {
    // A compact machine-readable summary (the full SimResult with all body
    // states would dominate the output).  The measurement half is the
    // bench vocabulary's `Sample` — the same fields `benchsuite` aggregates
    // into BENCH_*.json records — so sweep scripts read one schema
    // everywhere: `wall_ms`, `phases`, `total_sim`, `migration_fraction`,
    // `stats`.
    let mut entries = vec![
        ("scenario".to_string(), serde::Value::String(scenario.to_string())),
        ("backend".to_string(), serde::Value::String(run.name.clone())),
        ("spec".to_string(), serde::Serialize::to_value(&RunSpec::new(scenario, &run.name, cfg))),
        ("workload".to_string(), serde::Serialize::to_value(diag)),
        // Canonical digest of the final body states (bit-exact, sorted by
        // id) — two runs produced the same trajectory iff these match,
        // which is how the CI checkpoint smoke compares a resumed run
        // against an uninterrupted one.
        (
            "state_digest".to_string(),
            serde::Value::String(snapstore::digest_bodies(&run.result.bodies)),
        ),
    ];
    let sample = engine::bench::Sample::from_run(run);
    if let serde::Value::Object(fields) = serde::Serialize::to_value(&sample) {
        entries.extend(fields);
    }
    serde::Value::Object(entries)
}

fn print_json(
    scenario: &str,
    cfg: &SimConfig,
    diag: &Diagnostics,
    runs: &[BackendRun],
    comparing: bool,
) {
    // `--compare` always emits an array (even with one backend); a plain
    // `--backend` run emits a single object.
    let value = if comparing {
        serde::Value::Array(
            runs.iter().map(|run| summary_value(scenario, cfg, diag, run)).collect(),
        )
    } else {
        summary_value(scenario, cfg, diag, &runs[0])
    };
    struct Raw(serde::Value);
    impl serde::Serialize for Raw {
        fn to_value(&self) -> serde::Value {
            self.0.clone()
        }
    }
    println!("{}", serde_json::to_string_pretty(&Raw(value)).expect("serialize report"));
}
