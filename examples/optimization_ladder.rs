//! Reproduces the paper's optimization story in miniature: runs every level
//! of the cumulative ladder on the same workload and prints the per-phase
//! times and the speed-up over the naive baseline (the Figure 5 narrative).
//!
//! ```text
//! cargo run --release --example optimization_ladder -- [nbodies] [ranks]
//! ```

use barnes_hut_upc::prelude::*;
use pgas::Machine;

fn main() {
    let mut args = std::env::args().skip(1);
    let nbodies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_192);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);

    println!("Cumulative optimization ladder — {nbodies} bodies on {ranks} emulated ranks");
    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} | {:>9} {:>9}",
        "level", "tree", "cofm", "part", "redist", "force", "advance", "total", "speedup"
    );

    let mut baseline_total = None;
    for opt in OptLevel::ALL {
        let mut cfg = SimConfig::new(nbodies, Machine::process_per_node(ranks), opt);
        cfg.steps = 3;
        cfg.measured_steps = 1;
        let result = run_simulation(&cfg);
        let total = result.total;
        let baseline = *baseline_total.get_or_insert(total);
        println!(
            "{:<22} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} | {:>9.4} {:>8.1}x",
            opt.name(),
            result.phases.tree,
            result.phases.cofm,
            result.phases.partition,
            result.phases.redistribute,
            result.phases.force,
            result.phases.advance,
            total,
            baseline / total
        );
    }

    println!();
    println!("(simulated seconds; the paper reports >1600x at 112 threads on 2M bodies)");
}
