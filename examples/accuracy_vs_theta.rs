//! Accuracy / cost trade-off of the multipole acceptance criterion: sweeps θ
//! and reports the force error against direct summation together with the
//! number of interactions per body (the knob the paper fixes at θ = 1.0,
//! following SPLASH-2).
//!
//! ```text
//! cargo run --release --example accuracy_vs_theta -- [nbodies]
//! ```

use barnes_hut_upc::prelude::*;
use nbody::direct;
use octree::walk;

fn main() {
    let nbodies: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4_000);
    let eps = nbody::DEFAULT_EPS;
    let bodies = generate(&PlummerConfig::new(nbodies, 4242));
    let reference = direct::compute_forces(&bodies, eps);
    let direct_interactions = (nbodies * (nbodies - 1)) as f64;

    println!("theta sweep over {nbodies} Plummer bodies (reference: direct summation)");
    println!();
    println!(
        "{:>6} {:>16} {:>16} {:>20} {:>14}",
        "theta", "mean rel. error", "max rel. error", "interactions/body", "vs direct"
    );
    for &theta in &[0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0] {
        let approx = walk::compute_forces(&bodies, theta, eps);
        let mut mean = 0.0;
        let mut max: f64 = 0.0;
        let mut interactions = 0u64;
        for (a, r) in approx.iter().zip(&reference) {
            let err = (a.acc - r.acc).norm() / r.acc.norm().max(1e-12);
            mean += err;
            max = max.max(err);
            interactions += a.cost as u64;
        }
        mean /= nbodies as f64;
        println!(
            "{:>6.2} {:>16.3e} {:>16.3e} {:>20.1} {:>13.1}%",
            theta,
            mean,
            max,
            interactions as f64 / nbodies as f64,
            100.0 * interactions as f64 / direct_interactions
        );
    }
    println!();
    println!("theta = 1.0 is the SPLASH-2 / paper default: ~1% mean force error at a small");
    println!("fraction of the direct-summation work, which is what makes Barnes-Hut O(n log n).");
}
