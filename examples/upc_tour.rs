//! A tour of the PGAS (UPC-emulation) substrate itself: shared arrays,
//! per-thread shared heaps, global pointers, collectives, locks and
//! non-blocking aggregated gathers — each with the communication cost the
//! emulator charges for it.
//!
//! ```text
//! cargo run --release --example upc_tour -- [ranks]
//! ```

use barnes_hut_upc::prelude::*;
use pgas::{GlobalLock, Machine};

fn main() {
    let ranks: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(4);
    let machine = Machine::process_per_node(ranks);
    let runtime = Runtime::new(machine);

    println!("UPC-style PGAS tour on {ranks} emulated ranks");
    println!();

    // A block-distributed shared array (upc_global_alloc) ...
    let table: SharedVec<u64> = SharedVec::new(ranks, ranks * 8, 0);
    // ... a per-thread shared heap (upc_alloc) ...
    let arena: SharedArena<u64> = SharedArena::new(ranks);
    // ... and a global lock.
    let lock = GlobalLock::new(0);

    let report = runtime.run(|ctx| {
        // 1. Every rank fills its own block with local writes.
        for i in table.local_range(ctx.rank()) {
            table.write_local(ctx, i, (ctx.rank() * 100 + i) as u64);
        }
        ctx.barrier();

        // 2. Fine-grained remote reads vs one bulk get of a neighbour's block.
        let neighbour = (ctx.rank() + 1) % ctx.ranks();
        let t0 = ctx.now();
        let mut fine_sum = 0u64;
        for i in table.local_range(neighbour) {
            fine_sum += table.read(ctx, i);
        }
        let fine_cost = ctx.now() - t0;
        let t1 = ctx.now();
        let bulk: u64 = table.get_block(ctx, table.local_range(neighbour)).into_iter().sum();
        let bulk_cost = ctx.now() - t1;
        assert_eq!(fine_sum, bulk);

        // 3. Allocate in the local shared heap and share the pointers.
        let mine = arena.alloc(ctx, 1000 + ctx.rank() as u64);
        let everyone: Vec<GlobalPtr> = ctx.allgather(mine);

        // 4. Aggregated non-blocking gather of everyone's element, with
        //    compute overlapping the transfer.
        let t2 = ctx.now();
        let handle = arena.get_vlist_async(ctx, &everyone);
        ctx.charge_compute(2.0 * fine_cost.max(1e-6)); // pretend to work
        let values = ctx.wait_sync(handle);
        let async_cost = ctx.now() - t2;

        // 5. A reduction and a mutual-exclusion update.
        let total = ctx.allreduce_sum(values.iter().sum::<u64>() as f64);
        {
            let _guard = lock.lock(ctx);
            // critical section
        }
        ctx.barrier();

        (fine_cost, bulk_cost, async_cost, total, ctx.stats_snapshot())
    });

    println!(
        "{:<6} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "rank", "fine-grained", "bulk memget", "async vlist", "remote gets", "messages"
    );
    for r in &report.ranks {
        let (fine, bulk, asynchronous, _, stats) = &r.result;
        println!(
            "{:<6} {:>12.1}us {:>12.1}us {:>12.1}us {:>12} {:>12}",
            r.rank,
            fine * 1e6,
            bulk * 1e6,
            asynchronous * 1e6,
            stats.remote_gets,
            stats.messages
        );
    }
    let total = report.ranks[0].result.3;
    println!();
    println!("allreduce over every rank's gathered values: {total}");
    println!("simulated makespan: {:.1} us", report.makespan() * 1e6);
    println!();
    println!("note how one bulk get costs a single latency while the fine-grained loop pays one per element,");
    println!("and how the aggregated non-blocking gather overlaps its transfer with compute.");
}
