//! Quickstart: run the fully optimized distributed Barnes-Hut solver on an
//! emulated cluster and print the per-phase breakdown the paper's tables
//! report.
//!
//! ```text
//! cargo run --release --example quickstart -- [nbodies] [ranks]
//! ```

use barnes_hut_upc::prelude::*;
use pgas::Machine;

fn main() {
    let mut args = std::env::args().skip(1);
    let nbodies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(16_384);
    let ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);

    println!("Barnes-Hut in (emulated) UPC — quickstart");
    println!("  bodies : {nbodies} (Plummer model, M = G = 1)");
    println!("  ranks  : {ranks} (one process per node, Power5/LAPI-like cost model)");
    println!();

    // The fully optimized configuration: §6 subspace tree build plus the
    // whole §5 ladder underneath it.
    let machine = Machine::process_per_node(ranks);
    let cfg = SimConfig::new(nbodies, machine, OptLevel::Subspace);
    let result = run_simulation(&cfg);

    println!(
        "simulated time per phase (max over ranks, last {} of {} steps):",
        cfg.measured_steps, cfg.steps
    );
    for phase in Phase::ALL {
        println!(
            "  {:<16} {:>10.4} s   {:>5.1} %",
            phase.label(),
            result.phases.get(phase),
            result.phases.percent(phase)
        );
    }
    println!("  {:<16} {:>10.4} s", "Total", result.total);
    println!();
    println!("body migration per step : {:.2} %", 100.0 * result.migration_fraction);
    if let Some(frac) = result.vlist_single_source_fraction() {
        println!("single-source gathers   : {:.1} %", 100.0 * frac);
    }

    // A couple of bodies, to show the physical state is available too.
    println!();
    println!("first three bodies after the run:");
    for b in result.bodies.iter().take(3) {
        println!(
            "  id {:>4}  pos ({:+.3}, {:+.3}, {:+.3})  |v| {:.3}  cost {}",
            b.id,
            b.pos.x,
            b.pos.y,
            b.pos.z,
            b.vel.norm(),
            b.cost
        );
    }
}
