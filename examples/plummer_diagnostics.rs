//! Physics-facing example: generate a Plummer cluster, evolve it with the
//! sequential Barnes-Hut solver and watch its structural diagnostics
//! (Lagrangian radii, velocity dispersion, energy balance) stay put — an
//! equilibrium model should neither collapse nor evaporate over a few
//! dynamical times.
//!
//! ```text
//! cargo run --release --example plummer_diagnostics -- [nbodies] [steps]
//! ```

use barnes_hut_upc::prelude::*;
use nbody::{energy, integrate, stats};
use octree::walk;

fn main() {
    let mut args = std::env::args().skip(1);
    let nbodies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4_000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let dt = 0.025;
    let theta = 0.8;
    let eps = 0.05;

    let mut bodies = generate(&PlummerConfig::new(nbodies, 20_260_614));
    let initial = stats::summarize(&bodies);
    println!("Plummer cluster, N = {nbodies}");
    println!("  total mass          : {:.4}", initial.total_mass);
    println!("  half-mass radius    : {:.4}  (analytic ≈ 0.766)", initial.half_mass_radius);
    println!("  velocity dispersion : {:.4}", initial.velocity_dispersion);
    println!();

    bodies = walk::compute_forces(&bodies, theta, eps);
    let e0 = energy::total_energy(&bodies, eps);

    println!("step,time,r10,r50,r90,sigma,virial,energy_drift");
    for step in 0..=steps {
        let radii = stats::lagrangian_radii(&bodies, &[0.1, 0.5, 0.9]);
        let sigma = stats::velocity_dispersion(&bodies);
        let virial = energy::virial_ratio(&bodies, eps);
        let drift = ((energy::total_energy(&bodies, eps) - e0) / e0).abs();
        println!(
            "{step},{:.3},{:.4},{:.4},{:.4},{:.4},{:.3},{:.2e}",
            step as f64 * dt,
            radii[0],
            radii[1],
            radii[2],
            sigma,
            virial,
            drift
        );
        if step < steps {
            integrate::step(&mut bodies, dt, |bs| walk::compute_forces(bs, theta, eps));
        }
    }

    let final_summary = stats::summarize(&bodies);
    eprintln!();
    eprintln!(
        "half-mass radius {:.4} -> {:.4} after {} steps ({:.1} %% change)",
        initial.half_mass_radius,
        final_summary.half_mass_radius,
        steps,
        100.0 * (final_summary.half_mass_radius - initial.half_mass_radius).abs()
            / initial.half_mass_radius
    );
}
