//! Physics-facing example: generate a cluster from any registered scenario,
//! evolve it with the sequential Barnes-Hut solver and watch its structural
//! diagnostics (Lagrangian radii, velocity dispersion, energy balance).
//!
//! For equilibrium scenarios (`plummer`, `king`, `hernquist`) the profile
//! should neither collapse nor evaporate over a few dynamical times; for
//! `cold-cube` the same time series instead shows the collapse happening —
//! the half-mass radius plunges within the first free-fall time.
//!
//! ```text
//! cargo run --release --example plummer_diagnostics -- [scenario] [nbodies] [steps]
//! cargo run --release --example plummer_diagnostics -- king 4000 40
//! ```

use barnes_hut_upc::prelude::*;
use nbody::{energy, integrate, stats};
use octree::walk;

fn main() {
    let mut args = std::env::args().skip(1);
    let scenario_name = args.next().unwrap_or_else(|| "plummer".to_string());
    let nbodies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4_000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);

    let registry = scenario_registry();
    let scenario = registry.get(&scenario_name).unwrap_or_else(|| {
        eprintln!(
            "unknown scenario: {scenario_name} (registered: {})",
            registry.names().join(", ")
        );
        std::process::exit(2)
    });
    let tuning = scenario.recommended_config();
    let (theta, eps, dt) = (tuning.theta.min(0.8), tuning.eps, tuning.dt);

    let mut bodies = scenario.generate(nbodies, 20_260_614);
    let initial = stats::summarize(&bodies);
    println!("{} cluster, N = {nbodies}", scenario.name());
    println!("  total mass          : {:.4}", initial.total_mass);
    println!("  half-mass radius    : {:.4}", initial.half_mass_radius);
    println!("  velocity dispersion : {:.4}", initial.velocity_dispersion);
    println!("  virial ratio        : {:.4}", scenario.diagnostics(&bodies).virial_ratio);
    println!();

    bodies = walk::compute_forces(&bodies, theta, eps);
    let e0 = energy::total_energy(&bodies, eps);

    println!("step,time,r10,r50,r90,sigma,virial,energy_drift");
    for step in 0..=steps {
        let radii = stats::lagrangian_radii(&bodies, &[0.1, 0.5, 0.9]);
        let sigma = stats::velocity_dispersion(&bodies);
        let virial = energy::virial_ratio(&bodies, eps);
        let drift = ((energy::total_energy(&bodies, eps) - e0) / e0).abs();
        println!(
            "{step},{:.3},{:.4},{:.4},{:.4},{:.4},{:.3},{:.2e}",
            step as f64 * dt,
            radii[0],
            radii[1],
            radii[2],
            sigma,
            virial,
            drift
        );
        if step < steps {
            integrate::step(&mut bodies, dt, |bs| walk::compute_forces(bs, theta, eps));
        }
    }

    let final_summary = stats::summarize(&bodies);
    eprintln!();
    eprintln!(
        "half-mass radius {:.4} -> {:.4} after {} steps ({:.1} %% change)",
        initial.half_mass_radius,
        final_summary.half_mass_radius,
        steps,
        100.0 * (final_summary.half_mass_radius - initial.half_mass_radius).abs()
            / initial.half_mass_radius
    );
}
