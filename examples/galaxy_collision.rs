//! A domain scenario: two "galaxies" on a collision course, built with the
//! `scenarios` subsystem's [`Merger`] composer.
//!
//! The merger components default to two Plummer spheres, but any registered
//! scenario family can collide with any other — pass their names as the
//! third and fourth arguments.  The example exercises the sequential
//! library surface (scenario generation, octree force evaluation, leapfrog
//! integrator, energy diagnostics) and prints a CSV time series of
//! separation and energy that can be plotted directly.
//!
//! ```text
//! cargo run --release --example galaxy_collision -- [bodies_per_galaxy] [steps] [family_a] [family_b]
//! cargo run --release --example galaxy_collision -- 2000 40 plummer exp-disk
//! ```

use barnes_hut_upc::prelude::*;
use nbody::{energy, integrate};
use octree::walk;
use scenarios::Merger;

fn main() {
    let mut args = std::env::args().skip(1);
    let per_galaxy: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let family_a = args.next().unwrap_or_else(|| "plummer".to_string());
    let family_b = args.next().unwrap_or_else(|| "plummer".to_string());
    let dt = 0.05;
    let theta = 0.7;
    let eps = 0.05;

    // Two equal-mass sub-scenarios, offset and closing — `scenarios::make`
    // keeps the components swappable by name from one source of truth.
    let component = |name: &str| -> Box<dyn Scenario> {
        scenarios::make(name).unwrap_or_else(|| {
            eprintln!(
                "unknown scenario family: {name} (try one of {:?})",
                scenarios::BUILTIN_NAMES
            );
            std::process::exit(2);
        })
    };
    let merger = Merger::new(
        component(&family_a),
        component(&family_b),
        Vec3::new(5.0, 1.2, 0.0),
        Vec3::new(-0.5, 0.0, 0.0),
        0.5,
    );

    let mut bodies = merger.generate(2 * per_galaxy, 20_111_123);
    let diag = merger.diagnostics(&bodies);
    eprintln!(
        "merger of {family_a} + {family_b}: n {} | r50 {:.3} | virial {:.3}",
        bodies.len(),
        diag.r50,
        diag.virial_ratio
    );

    // Bootstrap the leapfrog with an initial force evaluation.
    bodies = walk::compute_forces(&bodies, theta, eps);
    let e0 = energy::total_energy(&bodies, eps);

    println!("step,time,separation,kinetic,potential,total_energy,energy_drift");
    for step in 0..=steps {
        let (com_a, com_b) = centers(&bodies, per_galaxy);
        let separation = com_a.dist(com_b);
        let kinetic = energy::kinetic_energy(&bodies);
        let potential = energy::potential_energy(&bodies, eps);
        let total = kinetic + potential;
        println!(
            "{step},{:.3},{separation:.4},{kinetic:.5},{potential:.5},{total:.5},{:.2e}",
            step as f64 * dt,
            ((total - e0) / e0).abs()
        );
        if step < steps {
            integrate::step(&mut bodies, dt, |bs| walk::compute_forces(bs, theta, eps));
        }
    }

    let (com_a, com_b) = centers(&bodies, per_galaxy);
    eprintln!();
    eprintln!("final separation of the two galaxies: {:.3}", com_a.dist(com_b));
    eprintln!("relative energy drift over the whole run: {:.2e}", {
        let e1 = energy::total_energy(&bodies, eps);
        ((e1 - e0) / e0).abs()
    });
}

/// Centres of mass of the two galaxies (the merger stores the primary's
/// bodies first).
fn centers(bodies: &[Body], per_galaxy: usize) -> (Vec3, Vec3) {
    let com = |slice: &[Body]| {
        let m: f64 = slice.iter().map(|b| b.mass).sum();
        slice.iter().map(|b| b.pos * b.mass).sum::<Vec3>() / m
    };
    (com(&bodies[..per_galaxy]), com(&bodies[per_galaxy..]))
}
