//! A domain scenario: two Plummer "galaxies" on a collision course.
//!
//! This example exercises the sequential library surface (Plummer generator,
//! octree force evaluation, leapfrog integrator, energy diagnostics) rather
//! than the distributed solver, and prints a CSV time series of separation
//! and energy that can be plotted directly.
//!
//! ```text
//! cargo run --release --example galaxy_collision -- [bodies_per_galaxy] [steps]
//! ```

use barnes_hut_upc::prelude::*;
use nbody::{energy, integrate};
use octree::walk;

fn main() {
    let mut args = std::env::args().skip(1);
    let per_galaxy: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let steps: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40);
    let dt = 0.05;
    let theta = 0.7;
    let eps = 0.05;

    // Two Plummer spheres, offset and moving towards each other.
    let mut bodies = Vec::with_capacity(2 * per_galaxy);
    let offset = Vec3::new(2.5, 0.6, 0.0);
    let closing_speed = Vec3::new(0.25, 0.0, 0.0);
    for (galaxy, (sign, seed)) in [(1.0, 11u64), (-1.0, 23u64)].into_iter().enumerate() {
        for mut b in generate(&PlummerConfig::new(per_galaxy, seed)) {
            b.id = (galaxy * per_galaxy + b.id as usize) as u32;
            b.pos += offset * sign;
            b.vel -= closing_speed * sign;
            b.mass /= 2.0; // keep the total mass at 1
            bodies.push(b);
        }
    }

    // Bootstrap the leapfrog with an initial force evaluation.
    bodies = walk::compute_forces(&bodies, theta, eps);
    let e0 = energy::total_energy(&bodies, eps);

    println!("step,time,separation,kinetic,potential,total_energy,energy_drift");
    for step in 0..=steps {
        let (com_a, com_b) = centers(&bodies, per_galaxy);
        let separation = com_a.dist(com_b);
        let kinetic = energy::kinetic_energy(&bodies);
        let potential = energy::potential_energy(&bodies, eps);
        let total = kinetic + potential;
        println!(
            "{step},{:.3},{separation:.4},{kinetic:.5},{potential:.5},{total:.5},{:.2e}",
            step as f64 * dt,
            ((total - e0) / e0).abs()
        );
        if step < steps {
            integrate::step(&mut bodies, dt, |bs| walk::compute_forces(bs, theta, eps));
        }
    }

    let (com_a, com_b) = centers(&bodies, per_galaxy);
    eprintln!();
    eprintln!("final separation of the two galaxies: {:.3}", com_a.dist(com_b));
    eprintln!("relative energy drift over the whole run: {:.2e}", {
        let e1 = energy::total_energy(&bodies, eps);
        ((e1 - e0) / e0).abs()
    });
}

/// Centres of mass of the two galaxies (bodies are stored galaxy-by-galaxy).
fn centers(bodies: &[Body], per_galaxy: usize) -> (Vec3, Vec3) {
    let com = |slice: &[Body]| {
        let m: f64 = slice.iter().map(|b| b.mass).sum();
        slice.iter().map(|b| b.pos * b.mass).sum::<Vec3>() / m
    };
    (com(&bodies[..per_galaxy]), com(&bodies[per_galaxy..]))
}
