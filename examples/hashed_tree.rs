//! Data-structure example: the same Barnes-Hut force evaluation performed
//! with the pointer-linked octree and with the Warren–Salmon hashed oct-tree
//! (related work §8 of the paper), confirming they produce identical physics
//! and showing what each costs on the host.
//!
//! ```text
//! cargo run --release --example hashed_tree -- [nbodies]
//! ```

use barnes_hut_upc::prelude::*;
use nbody::{DEFAULT_EPS, DEFAULT_THETA};
use octree::hashed::HashedOctree;
use octree::walk;
use std::time::Instant;

fn main() {
    let nbodies: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let bodies = generate(&PlummerConfig::new(nbodies, 42));

    println!("Pointer octree vs Warren–Salmon hashed oct-tree, N = {nbodies}, θ = {DEFAULT_THETA}");
    println!();

    // Pointer-linked arena octree.
    let t0 = Instant::now();
    let mut pointer = Octree::build(&bodies, TreeParams::default());
    pointer.compute_mass(&bodies);
    let pointer_build = t0.elapsed();
    let t0 = Instant::now();
    let pointer_forces = walk::compute_forces(&bodies, DEFAULT_THETA, DEFAULT_EPS);
    let pointer_walk = t0.elapsed();

    // Hashed oct-tree keyed by path keys.
    let t0 = Instant::now();
    let mut hashed = HashedOctree::build(&bodies, TreeParams::default());
    hashed.compute_mass(&bodies);
    let hashed_build = t0.elapsed();
    let t0 = Instant::now();
    let hashed_forces = HashedOctree::compute_forces(&bodies, DEFAULT_THETA, DEFAULT_EPS);
    let hashed_walk = t0.elapsed();

    println!("{:<22} {:>12} {:>12}", "", "pointer", "hashed");
    println!("{:<22} {:>12} {:>12}", "cells", pointer.len(), hashed.len());
    println!(
        "{:<22} {:>11.1}ms {:>11.1}ms",
        "build + mass",
        pointer_build.as_secs_f64() * 1e3,
        hashed_build.as_secs_f64() * 1e3
    );
    println!(
        "{:<22} {:>11.1}ms {:>11.1}ms",
        "force walk (all bodies)",
        pointer_walk.as_secs_f64() * 1e3,
        hashed_walk.as_secs_f64() * 1e3
    );

    // The two structures implement the same geometry, so the forces agree to
    // rounding.
    let max_diff = pointer_forces
        .iter()
        .zip(&hashed_forces)
        .map(|(a, b)| (a.acc - b.acc).norm())
        .fold(0.0_f64, f64::max);
    let interactions_pointer: u64 = pointer_forces.iter().map(|b| b.cost as u64).sum();
    let interactions_hashed: u64 = hashed_forces.iter().map(|b| b.cost as u64).sum();
    println!("{:<22} {:>12} {:>12}", "interactions", interactions_pointer, interactions_hashed);
    println!();
    println!("maximum |acc_pointer − acc_hashed| over all bodies: {max_diff:.3e}");
    assert!(max_diff < 1e-9, "the two tree organisations must agree");
    println!("identical physics — the choice between them is purely an engineering trade-off.");
}
