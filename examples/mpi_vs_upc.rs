//! Head-to-head comparison of the optimized UPC solver and the
//! message-passing (MPI-style) comparator — the experiment the paper's
//! conclusion (§9) defers to future work.
//!
//! Both backends come from the engine registry and run through the shared
//! comparison driver ([`engine::run_backends`]) — the same code path as
//! `bhsim --compare upc,mpi` — on the same workload and the same emulated
//! machine, for a sweep of rank counts.
//!
//! ```text
//! cargo run --release --example mpi_vs_upc -- [nbodies] [max_ranks] [scenario]
//! ```

use barnes_hut_upc::engine;
use barnes_hut_upc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let nbodies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_192);
    let max_ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let scenario_name = args.next().unwrap_or_else(|| "plummer".to_string());

    let scenarios = scenario_registry();
    let scenario = scenarios.get(&scenario_name).unwrap_or_else(|| {
        eprintln!(
            "unknown scenario: {scenario_name} (registered: {})",
            scenarios.names().join(", ")
        );
        std::process::exit(2)
    });
    let backends = backend_registry();
    let names = vec!["upc".to_string(), "mpi".to_string()];

    println!(
        "UPC (optimized, §5+§6) vs MPI-style (LET + all-to-all) — {nbodies} bodies, {} workload",
        scenario.name()
    );
    println!();
    println!(
        "{:>6}  {:>12} {:>12} {:>12}  {:>12} {:>12} {:>12}  {:>8}",
        "ranks",
        "UPC tree",
        "UPC force",
        "UPC total",
        "MPI tree",
        "MPI force",
        "MPI total",
        "MPI/UPC"
    );

    // The workload depends only on (scenario, n, seed), not the rank count:
    // every machine shape in the sweep runs bit-identical bodies.
    let tuning = scenario.recommended_config();
    let bodies = scenario.generate(nbodies, engine::DEFAULT_SEED);

    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let machine = Machine::process_per_node(ranks);
        let mut cfg = SimConfig::new(nbodies, machine, OptLevel::Subspace);
        cfg.theta = tuning.theta;
        cfg.eps = tuning.eps;
        cfg.dt = tuning.dt;

        let runs = engine::run_backends(&backends, &names, &cfg, &bodies)
            .expect("upc and mpi are registered builtin backends");
        let (upc, mpi) = (&runs[0].result, &runs[1].result);

        println!(
            "{:>6}  {:>11.4}s {:>11.4}s {:>11.4}s  {:>11.4}s {:>11.4}s {:>11.4}s  {:>8.2}",
            ranks,
            upc.phases.tree,
            upc.phases.force,
            upc.total,
            mpi.phases.tree,
            mpi.phases.force,
            mpi.total,
            mpi.total / upc.total.max(1e-12)
        );
        ranks *= 2;
    }

    println!();
    println!("Times are simulated seconds (max over ranks, measured steps only).");
    println!("A MPI/UPC ratio near 1 supports the paper's claim that the fully");
    println!("optimized UPC code reaches message-passing efficiency; the two codes");
    println!("differ only in how remote tree data reaches the force phase");
    println!("(demand-driven cached gets vs pushed locally essential trees).");
}
