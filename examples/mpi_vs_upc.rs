//! Head-to-head comparison of the optimized UPC solver and the
//! message-passing (MPI-style) comparator — the experiment the paper's
//! conclusion (§9) defers to future work.
//!
//! Both solvers run the same Plummer workload on the same emulated machine;
//! the table printed below shows the per-phase simulated times side by side
//! for a sweep of rank counts.
//!
//! ```text
//! cargo run --release --example mpi_vs_upc -- [nbodies] [max_ranks]
//! ```

use barnes_hut_upc::prelude::*;
use pgas::Machine;

fn main() {
    let mut args = std::env::args().skip(1);
    let nbodies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8_192);
    let max_ranks: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);

    println!("UPC (optimized, §5+§6) vs MPI-style (LET + all-to-all) — {nbodies} bodies");
    println!();
    println!(
        "{:>6}  {:>12} {:>12} {:>12}  {:>12} {:>12} {:>12}  {:>8}",
        "ranks",
        "UPC tree",
        "UPC force",
        "UPC total",
        "MPI tree",
        "MPI force",
        "MPI total",
        "MPI/UPC"
    );

    let mut ranks = 1usize;
    while ranks <= max_ranks {
        let machine = Machine::process_per_node(ranks);
        let cfg = SimConfig::new(nbodies, machine, OptLevel::Subspace);

        let upc = bh::run_simulation(&cfg);
        let mpi = bh_mpi::run_simulation(&cfg);

        println!(
            "{:>6}  {:>11.4}s {:>11.4}s {:>11.4}s  {:>11.4}s {:>11.4}s {:>11.4}s  {:>8.2}",
            ranks,
            upc.phases.tree,
            upc.phases.force,
            upc.total,
            mpi.phases.tree,
            mpi.phases.force,
            mpi.total,
            mpi.total / upc.total.max(1e-12)
        );
        ranks *= 2;
    }

    println!();
    println!("Times are simulated seconds (max over ranks, measured steps only).");
    println!("A MPI/UPC ratio near 1 supports the paper's claim that the fully");
    println!("optimized UPC code reaches message-passing efficiency; the two codes");
    println!("differ only in how remote tree data reaches the force phase");
    println!("(demand-driven cached gets vs pushed locally essential trees).");
}
